//! Structure-of-arrays frame storage: the hot-path replacement for
//! per-observation `LabeledObservation` clones.
//!
//! Algorithm 1 pushes every observation into the active window `A` *and*
//! the delayed buffer `B`. Storing each window as a `VecDeque` of owned
//! observations costs two heap-allocated feature vectors per step plus the
//! clone traffic itself — none of which the algorithm needs, because both
//! windows are views over the same most-recent `b + w` frames of the
//! stream.
//!
//! [`FrameStore`] keeps exactly those frames once, as three parallel
//! columns (a flat row-major `f64` feature arena, labels, predictions) in a
//! fixed ring. [`FrameWindows`] layers the two windows of Algorithm 1 over
//! it as *views by age* and maintains the incremental feature/label
//! [`Moments`] the fingerprint engine's tracked mode consumes.
//! [`FrameSource`] is the read interface shared by ring views, owned
//! [`FrameBlock`] snapshots and plain `[LabeledObservation]` slices, so
//! extraction code is written once and runs allocation-free over any of
//! them.

use crate::observation::LabeledObservation;
use crate::stats::Moments;
use crate::window::TrackedWindow;
use crate::winstats::SeqStats;

/// Read access to a window of frames, index `0` = oldest, `len - 1` =
/// newest — the iteration order every extraction pass uses.
pub trait FrameSource {
    /// Number of frames.
    fn len(&self) -> usize;

    /// Feature dimensionality of each frame (0 when empty and unknown).
    fn dims(&self) -> usize;

    /// Feature row of frame `i` (oldest-first indexing).
    fn features(&self, i: usize) -> &[f64];

    /// Ground-truth label of frame `i`.
    fn label(&self, i: usize) -> usize;

    /// Prequential prediction recorded with frame `i`.
    fn prediction(&self, i: usize) -> usize;

    /// Whether the source holds no frames.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Incrementally maintained moment accumulators accompanying a frame
/// window, substituted for the batch moment sweep by the engine's
/// incremental-moments mode.
pub trait MomentSource {
    /// Number of tracked feature dimensions.
    fn n_feature_moments(&self) -> usize;

    /// Moment accumulator for feature dimension `j`.
    fn feature_moments(&self, j: usize) -> &Moments;

    /// Moment accumulator for the label sequence.
    fn label_moments(&self) -> &Moments;
}

/// Incrementally maintained per-sequence statistics accompanying a frame
/// window — the state behind the engine's incremental-statistics mode,
/// which substitutes O(1) lookups for the batch ACF/PACF/MI/turning-point
/// sweeps. Sources that do not maintain the state return `None` and the
/// engine falls back to the batch sweep for them.
pub trait StatSource {
    /// Sequence statistics for feature dimension `j`, when maintained and
    /// currently valid for substitution.
    fn feature_stats(&self, j: usize) -> Option<&SeqStats>;

    /// Sequence statistics for the label sequence, when maintained.
    fn label_stats(&self) -> Option<&SeqStats>;

    /// Moments and sequence statistics for the prediction sequence, when
    /// maintained. Predictions (and errors) have no standalone moment
    /// accumulator outside the stat bank, so the pair travels together.
    fn prediction_track(&self) -> Option<(&Moments, &SeqStats)> {
        None
    }

    /// Moments and sequence statistics for the error-indicator sequence
    /// (`prediction != label` as 0/1), when maintained.
    fn error_track(&self) -> Option<(&Moments, &SeqStats)> {
        None
    }

    /// Which window of Algorithm 1 this source exposes (0 = active `A`,
    /// 1 = stale `B`) — keys the engine's per-window result caches.
    fn window_tag(&self) -> usize;
}

impl FrameSource for [LabeledObservation] {
    fn len(&self) -> usize {
        <[LabeledObservation]>::len(self)
    }

    fn dims(&self) -> usize {
        self.first().map_or(0, |o| o.features().len())
    }

    fn features(&self, i: usize) -> &[f64] {
        self[i].features()
    }

    fn label(&self, i: usize) -> usize {
        self[i].label()
    }

    fn prediction(&self, i: usize) -> usize {
        self[i].prediction
    }
}

impl FrameSource for TrackedWindow {
    fn len(&self) -> usize {
        TrackedWindow::len(self)
    }

    fn dims(&self) -> usize {
        self.n_features()
    }

    fn features(&self, i: usize) -> &[f64] {
        self.get(i).features()
    }

    fn label(&self, i: usize) -> usize {
        self.get(i).label()
    }

    fn prediction(&self, i: usize) -> usize {
        self.get(i).prediction
    }
}

impl MomentSource for TrackedWindow {
    fn n_feature_moments(&self) -> usize {
        self.n_features()
    }

    fn feature_moments(&self, j: usize) -> &Moments {
        TrackedWindow::feature_moments(self, j)
    }

    fn label_moments(&self) -> &Moments {
        TrackedWindow::label_moments(self)
    }
}

impl StatSource for TrackedWindow {
    fn feature_stats(&self, _j: usize) -> Option<&SeqStats> {
        None
    }

    fn label_stats(&self) -> Option<&SeqStats> {
        None
    }

    fn window_tag(&self) -> usize {
        0
    }
}

/// A fixed-capacity ring of the most recent frames, stored as parallel
/// columns: features in one flat row-major `f64` arena, labels and
/// predictions alongside. Rows are addressed by *age* (0 = newest).
#[derive(Debug, Clone)]
pub struct FrameStore {
    dims: usize,
    rows: usize,
    /// Ring slot the next frame will be written to.
    head: usize,
    /// Total frames ever pushed.
    pushed: u64,
    features: Vec<f64>,
    labels: Vec<usize>,
    preds: Vec<usize>,
}

impl FrameStore {
    /// Ring keeping the `rows` most recent frames of `dims` features each.
    pub fn new(rows: usize, dims: usize) -> Self {
        assert!(rows > 0, "frame store capacity must be positive");
        Self {
            dims,
            rows,
            head: 0,
            pushed: 0,
            features: vec![0.0; rows * dims],
            labels: vec![0; rows],
            preds: vec![0; rows],
        }
    }

    /// Overwrites the oldest slot with a new frame.
    pub fn push(&mut self, x: &[f64], label: usize, prediction: usize) {
        debug_assert_eq!(x.len(), self.dims);
        let at = self.head * self.dims;
        self.features[at..at + self.dims].copy_from_slice(x);
        self.labels[self.head] = label;
        self.preds[self.head] = prediction;
        self.head = (self.head + 1) % self.rows;
        self.pushed += 1;
    }

    /// Frames currently resident (`min(pushed, capacity)`).
    pub fn len(&self) -> usize {
        self.pushed.min(self.rows as u64) as usize
    }

    /// Whether no frame has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Total frames ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Feature dimensionality per frame.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Ring capacity in rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn slot_of_age(&self, age: usize) -> usize {
        debug_assert!(age < self.len(), "age {age} out of {} resident rows", self.len());
        (self.head + self.rows - 1 - age) % self.rows
    }

    /// Feature row of the frame `age` pushes ago (0 = newest).
    pub fn features_at_age(&self, age: usize) -> &[f64] {
        let at = self.slot_of_age(age) * self.dims;
        &self.features[at..at + self.dims]
    }

    /// Label of the frame `age` pushes ago.
    pub fn label_at_age(&self, age: usize) -> usize {
        self.labels[self.slot_of_age(age)]
    }

    /// Prediction of the frame `age` pushes ago.
    pub fn prediction_at_age(&self, age: usize) -> usize {
        self.preds[self.slot_of_age(age)]
    }

    /// A borrowed window over the frames with ages
    /// `[newest_age, newest_age + len)`.
    pub fn view(&self, newest_age: usize, len: usize) -> FrameView<'_> {
        debug_assert!(len == 0 || newest_age + len <= self.len());
        FrameView { store: self, newest_age, len }
    }
}

/// A borrowed, age-addressed window over a [`FrameStore`]; cheap to copy
/// and safe to share across scan worker threads.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    store: &'a FrameStore,
    newest_age: usize,
    len: usize,
}

impl FrameView<'_> {
    fn age_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        self.newest_age + self.len - 1 - i
    }
}

impl FrameSource for FrameView<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn dims(&self) -> usize {
        self.store.dims
    }

    fn features(&self, i: usize) -> &[f64] {
        self.store.features_at_age(self.age_of(i))
    }

    fn label(&self, i: usize) -> usize {
        self.store.label_at_age(self.age_of(i))
    }

    fn prediction(&self, i: usize) -> usize {
        self.store.prediction_at_age(self.age_of(i))
    }
}

/// An owned, contiguous SoA snapshot of a frame window. The drift path
/// copies the active window into one of these (a single flat memcpy-style
/// pass, reusing capacity across drifts) so model selection can run while
/// the ring keeps advancing semantics simple.
#[derive(Debug, Clone, Default)]
pub struct FrameBlock {
    dims: usize,
    len: usize,
    features: Vec<f64>,
    labels: Vec<usize>,
    preds: Vec<usize>,
}

impl FrameBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the contents with a copy of `src`, keeping capacity.
    pub fn copy_from<S: FrameSource + ?Sized>(&mut self, src: &S) {
        self.dims = src.dims();
        self.len = src.len();
        self.features.clear();
        self.labels.clear();
        self.preds.clear();
        for i in 0..self.len {
            self.features.extend_from_slice(src.features(i));
            self.labels.push(src.label(i));
            self.preds.push(src.prediction(i));
        }
    }

    /// Drops the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.features.clear();
        self.labels.clear();
        self.preds.clear();
    }
}

impl FrameSource for FrameBlock {
    fn len(&self) -> usize {
        self.len
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn features(&self, i: usize) -> &[f64] {
        let at = i * self.dims;
        &self.features[at..at + self.dims]
    }

    fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    fn prediction(&self, i: usize) -> usize {
        self.preds[i]
    }
}

/// A frame view paired with its window's incremental moments (and, when
/// enabled, its incremental sequence statistics) — what the engine's
/// tracked extraction entry points consume.
#[derive(Debug, Clone, Copy)]
pub struct TrackedFrames<'a> {
    view: FrameView<'a>,
    feat: &'a [Moments],
    label: &'a Moments,
    stats: Option<&'a StatBank>,
    tag: usize,
}

impl FrameSource for TrackedFrames<'_> {
    fn len(&self) -> usize {
        self.view.len()
    }

    fn dims(&self) -> usize {
        self.view.dims()
    }

    fn features(&self, i: usize) -> &[f64] {
        self.view.features(i)
    }

    fn label(&self, i: usize) -> usize {
        self.view.label(i)
    }

    fn prediction(&self, i: usize) -> usize {
        self.view.prediction(i)
    }
}

impl MomentSource for TrackedFrames<'_> {
    fn n_feature_moments(&self) -> usize {
        self.feat.len()
    }

    fn feature_moments(&self, j: usize) -> &Moments {
        &self.feat[j]
    }

    fn label_moments(&self) -> &Moments {
        self.label
    }
}

impl StatSource for TrackedFrames<'_> {
    fn feature_stats(&self, j: usize) -> Option<&SeqStats> {
        self.stats.map(|b| &b.feat[j])
    }

    fn label_stats(&self) -> Option<&SeqStats> {
        self.stats.map(|b| &b.label)
    }

    fn prediction_track(&self) -> Option<(&Moments, &SeqStats)> {
        self.stats.map(|b| (&b.pred_m, &b.pred))
    }

    fn error_track(&self) -> Option<(&Moments, &SeqStats)> {
        self.stats.map(|b| (&b.err_m, &b.err))
    }

    fn window_tag(&self) -> usize {
        self.tag
    }
}

/// One window's bank of incremental sequence statistics: one [`SeqStats`]
/// per feature dimension plus one each for the label, prediction and
/// error-indicator sequences. Predictions and errors also carry their own
/// [`Moments`] here — unlike features and labels, those sequences have no
/// moment accumulator elsewhere in [`FrameWindows`].
#[derive(Debug, Clone)]
pub struct StatBank {
    feat: Vec<SeqStats>,
    label: SeqStats,
    pred: SeqStats,
    pred_m: Moments,
    err: SeqStats,
    err_m: Moments,
}

impl StatBank {
    fn new(dims: usize, bins: usize) -> Self {
        Self {
            feat: vec![SeqStats::new(bins); dims],
            label: SeqStats::new(bins),
            pred: SeqStats::new(bins),
            pred_m: Moments::new(),
            err: SeqStats::new(bins),
            err_m: Moments::new(),
        }
    }

    fn reset(&mut self) {
        for s in &mut self.feat {
            s.reset();
        }
        self.label.reset();
        self.pred.reset();
        self.pred_m.reset();
        self.err.reset();
        self.err_m.reset();
    }
}

/// Both windows' stat banks, boxed so disabled pipelines pay one pointer.
#[derive(Debug, Clone)]
struct WindowStats {
    bins: usize,
    a: StatBank,
    s: StatBank,
}

/// Algorithm 1's two windows as views over one shared [`FrameStore`].
///
/// * the active window `A` — the `w` newest frames (ages `[0, w)`),
/// * the stale window `B` — graduates of the delay buffer, frames between
///   `b` and `b + w` steps old (ages `[b, b + w)`),
/// * the holding buffer — the `≤ b` newest frames not yet graduated.
///
/// The windows share one arena of `b + w` rows; pushing a frame is one
/// ring write plus O(d) moment updates, with no per-observation
/// allocation. `A` and `B` keep the same membership, iteration order,
/// eviction schedule and moment-rebuild cadence as the legacy
/// [`TrackedWindow`] / [`crate::window::BufferedWindow`] pair; clearing
/// the buffer after a drift is a logical restart (frames pushed before
/// the clear never graduate), exactly like clearing the legacy buffer.
#[derive(Debug, Clone)]
pub struct FrameWindows {
    store: FrameStore,
    window: usize,
    delay: usize,
    /// `pushed` count at the last buffer clear; frames older than this
    /// never graduate into the stale window.
    s_start: u64,
    a_feat: Vec<Moments>,
    a_label: Moments,
    a_evictions: usize,
    s_feat: Vec<Moments>,
    s_label: Moments,
    s_evictions: usize,
    stats: Option<Box<WindowStats>>,
}

impl FrameWindows {
    /// Windows of `window` frames with a graduation delay of `delay`
    /// frames, over `dims`-dimensional observations.
    pub fn new(window: usize, delay: usize, dims: usize) -> Self {
        assert!(window > 0, "window capacity must be positive");
        Self {
            store: FrameStore::new(window + delay, dims),
            window,
            delay,
            s_start: 0,
            a_feat: vec![Moments::new(); dims],
            a_label: Moments::new(),
            a_evictions: 0,
            s_feat: vec![Moments::new(); dims],
            s_label: Moments::new(),
            s_evictions: 0,
            stats: None,
        }
    }

    /// Configured window size `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Configured delay `b`.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Frames currently in the active window `A`.
    pub fn a_len(&self) -> usize {
        self.store.pushed.min(self.window as u64) as usize
    }

    /// Whether `A` has reached capacity.
    pub fn a_is_full(&self) -> bool {
        self.a_len() == self.window
    }

    /// Frames currently in the stale window `B`.
    pub fn stale_len(&self) -> usize {
        (self.store.pushed - self.s_start)
            .saturating_sub(self.delay as u64)
            .min(self.window as u64) as usize
    }

    /// Whether `B` has reached capacity.
    pub fn stale_is_full(&self) -> bool {
        self.stale_len() == self.window
    }

    /// Frames held back in the delay buffer (not yet graduated).
    pub fn holding_len(&self) -> usize {
        (self.store.pushed - self.s_start).min(self.delay as u64) as usize
    }

    /// The backing frame arena.
    pub fn store(&self) -> &FrameStore {
        &self.store
    }

    /// Pushes one frame into the shared arena, updating both windows'
    /// membership and moments. Ring reads of outgoing frames happen before
    /// the slot overwrite; moment edit order (admit new, then retire
    /// outgoing) matches [`TrackedWindow::push`].
    pub fn push(&mut self, x: &[f64], label: usize, prediction: usize) {
        let (w, b) = (self.window, self.delay);
        let n_a = self.a_len();
        let s_len = self.stale_len();
        let graduates = self.store.pushed - self.s_start >= b as u64;

        for (m, &v) in self.a_feat.iter_mut().zip(x) {
            m.push(v);
        }
        self.a_label.push(label as f64);
        if n_a == w {
            let out = self.store.features_at_age(w - 1);
            for (m, &v) in self.a_feat.iter_mut().zip(out) {
                m.remove(v);
            }
            self.a_label.remove(self.store.label_at_age(w - 1) as f64);
            self.a_evictions += 1;
        }

        if graduates {
            // The frame crossing age `b` enters the stale window; with a
            // zero delay that is the incoming frame itself.
            if b == 0 {
                for (m, &v) in self.s_feat.iter_mut().zip(x) {
                    m.push(v);
                }
                self.s_label.push(label as f64);
            } else {
                let g = self.store.features_at_age(b - 1);
                for (m, &v) in self.s_feat.iter_mut().zip(g) {
                    m.push(v);
                }
                self.s_label.push(self.store.label_at_age(b - 1) as f64);
            }
            if s_len == w {
                let out = self.store.features_at_age(b + w - 1);
                for (m, &v) in self.s_feat.iter_mut().zip(out) {
                    m.remove(v);
                }
                self.s_label.remove(self.store.label_at_age(b + w - 1) as f64);
                self.s_evictions += 1;
            }
        }

        if self.stats.is_some() {
            self.step_stats(x, label, prediction, n_a, s_len, graduates);
        }

        self.store.push(x, label, prediction);

        if self.a_evictions >= TrackedWindow::REBUILD_INTERVAL {
            self.rebuild_a();
        }
        if self.s_evictions >= TrackedWindow::REBUILD_INTERVAL {
            self.rebuild_s();
        }
        if self.stats.is_some() {
            self.refresh_stats();
        }
    }

    /// Enables incremental per-sequence statistics over both windows with
    /// a `bins x bins` mutual-information histogram, building the state
    /// from the frames already resident.
    ///
    /// Idempotent when already enabled with the same `bins`: the
    /// continuously-maintained state is kept untouched, which
    /// checkpoint-restore relies on (rebuilding would perturb the
    /// cross-sums' accumulation order and break bit-identical replay).
    pub fn enable_stats(&mut self, bins: usize) {
        assert!(bins >= 2, "mutual-information histogram needs at least 2 bins");
        if let Some(ws) = &self.stats {
            if ws.bins == bins {
                return;
            }
        }
        let dims = self.store.dims();
        let mut ws = Box::new(WindowStats {
            bins,
            a: StatBank::new(dims, bins),
            s: StatBank::new(dims, bins),
        });
        rebuild_bank(&self.store, 0, self.a_len(), &mut ws.a);
        rebuild_bank(&self.store, self.delay, self.stale_len(), &mut ws.s);
        self.stats = Some(ws);
    }

    /// Drops the incremental sequence statistics; tracked views fall back
    /// to reporting no stats and consumers use the batch sweeps.
    pub fn disable_stats(&mut self) {
        self.stats = None;
    }

    /// Histogram resolution of the enabled stat banks, `None` when off.
    pub fn stats_bins(&self) -> Option<usize> {
        self.stats.as_deref().map(|ws| ws.bins)
    }

    /// O(1) stat-bank maintenance for one incoming frame. Ring reads use
    /// pre-push ages: the caller runs this before the slot overwrite, so
    /// the outgoing rows are still readable. The neighbour plumbing
    /// mirrors the membership rules of [`FrameWindows::push`] exactly:
    /// for the active window the post-append sequence is
    /// `[x_0 .. x_{w-1}, v]`, so for tiny windows the evicted value's
    /// successors fall back to the incoming value itself.
    fn step_stats(
        &mut self,
        x: &[f64],
        label: usize,
        prediction: usize,
        n_a: usize,
        s_len: usize,
        graduates: bool,
    ) {
        let (w, b) = (self.window, self.delay);
        let ws = self.stats.as_deref_mut().expect("caller checked stats are enabled");
        let store = &self.store;

        // Active window A: the incoming frame enters, age w-1 leaves.
        {
            let p1 = (n_a >= 1).then(|| store.features_at_age(0));
            let p2 = (n_a >= 2).then(|| store.features_at_age(1));
            let ev = (n_a == w).then(|| {
                (
                    store.features_at_age(w - 1),
                    (w >= 2).then(|| store.features_at_age(w - 2)),
                    (w >= 3).then(|| store.features_at_age(w - 3)),
                )
            });
            for (j, s) in ws.a.feat.iter_mut().enumerate() {
                let v = x[j];
                let evict = ev.map(|(x0, x1, x2)| {
                    let x1 = x1.map_or(Some(v), |r| Some(r[j]));
                    let x2 = x2.map(|r| r[j]).or((w == 2).then_some(v));
                    (x0[j], x1, x2)
                });
                s.step(v, p1.map(|r| r[j]), p2.map(|r| r[j]), evict);
            }
            let v = label as f64;
            let evict = (n_a == w).then(|| {
                let x1 =
                    if w >= 2 { Some(store.label_at_age(w - 2) as f64) } else { Some(v) };
                let x2 = if w >= 3 {
                    Some(store.label_at_age(w - 3) as f64)
                } else {
                    (w == 2).then_some(v)
                };
                (store.label_at_age(w - 1) as f64, x1, x2)
            });
            ws.a.label.step(
                v,
                (n_a >= 1).then(|| store.label_at_age(0) as f64),
                (n_a >= 2).then(|| store.label_at_age(1) as f64),
                evict,
            );
            step_scalar(&mut ws.a.pred, &mut ws.a.pred_m, prediction as f64, 0, n_a, w, |age| {
                store.prediction_at_age(age) as f64
            });
            let e = err_value(prediction, label);
            step_scalar(&mut ws.a.err, &mut ws.a.err_m, e, 0, n_a, w, |age| err_at(store, age));
        }

        // Stale window B: the graduating frame enters (the incoming frame
        // itself when the delay is zero), age b + w - 1 leaves.
        if graduates {
            let gfeat = (b > 0).then(|| store.features_at_age(b - 1));
            let p1 = (s_len >= 1).then(|| store.features_at_age(b));
            let p2 = (s_len >= 2).then(|| store.features_at_age(b + 1));
            let ev = (s_len == w).then(|| {
                (
                    store.features_at_age(b + w - 1),
                    (w >= 2).then(|| store.features_at_age(b + w - 2)),
                    (w >= 3).then(|| store.features_at_age(b + w - 3)),
                )
            });
            for (j, s) in ws.s.feat.iter_mut().enumerate() {
                let g = gfeat.map_or(x[j], |r| r[j]);
                let evict = ev.map(|(x0, x1, x2)| {
                    let x1 = x1.map_or(Some(g), |r| Some(r[j]));
                    let x2 = x2.map(|r| r[j]).or((w == 2).then_some(g));
                    (x0[j], x1, x2)
                });
                s.step(g, p1.map(|r| r[j]), p2.map(|r| r[j]), evict);
            }
            let g = if b == 0 { label as f64 } else { store.label_at_age(b - 1) as f64 };
            let evict = (s_len == w).then(|| {
                let x1 = if w >= 2 {
                    Some(store.label_at_age(b + w - 2) as f64)
                } else {
                    Some(g)
                };
                let x2 = if w >= 3 {
                    Some(store.label_at_age(b + w - 3) as f64)
                } else {
                    (w == 2).then_some(g)
                };
                (store.label_at_age(b + w - 1) as f64, x1, x2)
            });
            ws.s.label.step(
                g,
                (s_len >= 1).then(|| store.label_at_age(b) as f64),
                (s_len >= 2).then(|| store.label_at_age(b + 1) as f64),
                evict,
            );
            let gp = if b == 0 { prediction as f64 } else { store.prediction_at_age(b - 1) as f64 };
            step_scalar(&mut ws.s.pred, &mut ws.s.pred_m, gp, b, s_len, w, |age| {
                store.prediction_at_age(age) as f64
            });
            let ge = if b == 0 { err_value(prediction, label) } else { err_at(store, b - 1) };
            step_scalar(&mut ws.s.err, &mut ws.s.err_m, ge, b, s_len, w, |age| err_at(store, age));
        }
    }

    /// Post-push pass: rebuilds any stat that requested it (histogram
    /// edge moved, non-finite values just left the window) and resummates
    /// any whose shift reference drifted too far from the window mean.
    fn refresh_stats(&mut self) {
        let a_len = self.a_len();
        let s_len = self.stale_len();
        let delay = self.delay;
        let Some(ws) = self.stats.as_deref_mut() else { return };
        refresh_bank(&self.store, 0, a_len, &mut ws.a, &self.a_feat, &self.a_label);
        refresh_bank(&self.store, delay, s_len, &mut ws.s, &self.s_feat, &self.s_label);
    }

    /// Logically empties the delay buffer and stale window (the ring keeps
    /// its frames; they simply never graduate). The active window is
    /// untouched, mirroring the legacy post-drift `buffer.clear()`.
    pub fn clear_buffer(&mut self) {
        self.s_start = self.store.pushed;
        for m in &mut self.s_feat {
            m.reset();
        }
        self.s_label.reset();
        self.s_evictions = 0;
        if let Some(ws) = self.stats.as_deref_mut() {
            ws.s.reset();
        }
    }

    /// View over the active window `A`, oldest first.
    pub fn a_view(&self) -> FrameView<'_> {
        self.store.view(0, self.a_len())
    }

    /// View over the stale window `B`, oldest first.
    pub fn stale_view(&self) -> FrameView<'_> {
        self.store.view(self.delay, self.stale_len())
    }

    /// The active window paired with its incremental moments.
    pub fn a_tracked(&self) -> TrackedFrames<'_> {
        TrackedFrames {
            view: self.a_view(),
            feat: &self.a_feat,
            label: &self.a_label,
            stats: self.stats.as_deref().map(|ws| &ws.a),
            tag: 0,
        }
    }

    /// The stale window paired with its incremental moments.
    pub fn stale_tracked(&self) -> TrackedFrames<'_> {
        TrackedFrames {
            view: self.stale_view(),
            feat: &self.s_feat,
            label: &self.s_label,
            stats: self.stats.as_deref().map(|ws| &ws.s),
            tag: 1,
        }
    }

    fn rebuild_a(&mut self) {
        for m in &mut self.a_feat {
            m.reset();
        }
        self.a_label.reset();
        let len = self.a_len();
        let view = self.store.view(0, len);
        for i in 0..view.len() {
            for (m, &v) in self.a_feat.iter_mut().zip(view.features(i)) {
                m.push(v);
            }
            self.a_label.push(view.label(i) as f64);
        }
        self.a_evictions = 0;
        // Scheduled resummation of the stat bank rides the same cadence,
        // refreshing the cross-sums' shift reference to the current mean.
        if let Some(ws) = self.stats.as_deref_mut() {
            rebuild_bank(&self.store, 0, len, &mut ws.a);
        }
    }

    fn rebuild_s(&mut self) {
        for m in &mut self.s_feat {
            m.reset();
        }
        self.s_label.reset();
        let len = self.stale_len();
        let view = self.store.view(self.delay, len);
        for i in 0..view.len() {
            for (m, &v) in self.s_feat.iter_mut().zip(view.features(i)) {
                m.push(v);
            }
            self.s_label.push(view.label(i) as f64);
        }
        self.s_evictions = 0;
        if let Some(ws) = self.stats.as_deref_mut() {
            rebuild_bank(&self.store, self.delay, len, &mut ws.s);
        }
    }
}

/// The error-indicator value of one frame (`prediction != label` as 0/1),
/// matching the batch `Errors` behaviour-source sequence.
fn err_value(prediction: usize, label: usize) -> f64 {
    if prediction != label {
        1.0
    } else {
        0.0
    }
}

/// Error indicator of the frame `age` pushes ago.
fn err_at(store: &FrameStore, age: usize) -> f64 {
    err_value(store.prediction_at_age(age), store.label_at_age(age))
}

/// Steps one scalar sequence's stats *and* moments for a window admitting
/// `v` (with eviction once at capacity), applying the same tiny-window
/// neighbour fallbacks as the feature/label stepping above. `get` reads
/// the sequence value of the frame at an absolute pre-push ring age;
/// `base` is the window's newest age (0 for `A`, the delay for `B`) and
/// `n` its length before this admit.
fn step_scalar(
    s: &mut SeqStats,
    m: &mut Moments,
    v: f64,
    base: usize,
    n: usize,
    w: usize,
    get: impl Fn(usize) -> f64,
) {
    m.push(v);
    if n == w {
        m.remove(get(base + w - 1));
    }
    let evict = (n == w).then(|| {
        let x1 = if w >= 2 { Some(get(base + w - 2)) } else { Some(v) };
        let x2 = if w >= 3 { Some(get(base + w - 3)) } else { (w == 2).then_some(v) };
        (get(base + w - 1), x1, x2)
    });
    s.step(v, (n >= 1).then(|| get(base)), (n >= 2).then(|| get(base + 1)), evict);
}

/// Exact rebuild of every stat in `bank` from the window with the given
/// ring coordinates.
fn rebuild_bank(store: &FrameStore, newest_age: usize, len: usize, bank: &mut StatBank) {
    for (j, s) in bank.feat.iter_mut().enumerate() {
        let view = store.view(newest_age, len);
        s.rebuild(len, |i| view.features(i)[j]);
    }
    let view = store.view(newest_age, len);
    bank.label.rebuild(len, |i| view.label(i) as f64);
    bank.pred.rebuild(len, |i| view.prediction(i) as f64);
    bank.pred_m.reset();
    for i in 0..len {
        bank.pred_m.push(view.prediction(i) as f64);
    }
    bank.err.rebuild(len, |i| err_value(view.prediction(i), view.label(i)));
    bank.err_m.reset();
    for i in 0..len {
        bank.err_m.push(err_value(view.prediction(i), view.label(i)));
    }
}

/// Rebuilds the stats in `bank` that request it and resummates those whose
/// shift reference drifted ≥ 16 sigma from the window mean (see
/// [`SeqStats::shift_drifted`]).
fn refresh_bank(
    store: &FrameStore,
    newest_age: usize,
    len: usize,
    bank: &mut StatBank,
    feat_moments: &[Moments],
    label_moments: &Moments,
) {
    for (j, s) in bank.feat.iter_mut().enumerate() {
        let m = &feat_moments[j];
        if s.needs_rebuild() || (s.is_valid() && s.shift_drifted(m.mean(), m.sum_sq_dev())) {
            let view = store.view(newest_age, len);
            s.rebuild(len, |i| view.features(i)[j]);
        }
    }
    let m = label_moments;
    let s = &mut bank.label;
    if s.needs_rebuild() || (s.is_valid() && s.shift_drifted(m.mean(), m.sum_sq_dev())) {
        let view = store.view(newest_age, len);
        s.rebuild(len, |i| view.label(i) as f64);
    }
    let (m, s) = (&bank.pred_m, &mut bank.pred);
    if s.needs_rebuild() || (s.is_valid() && s.shift_drifted(m.mean(), m.sum_sq_dev())) {
        let view = store.view(newest_age, len);
        s.rebuild(len, |i| view.prediction(i) as f64);
    }
    let (m, s) = (&bank.err_m, &mut bank.err);
    if s.needs_rebuild() || (s.is_valid() && s.shift_drifted(m.mean(), m.sum_sq_dev())) {
        let view = store.view(newest_age, len);
        s.rebuild(len, |i| err_value(view.prediction(i), view.label(i)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{BufferedWindow, SlidingWindow};

    fn obs(i: usize) -> (Vec<f64>, usize, usize) {
        (vec![i as f64, (i as f64 * 0.7).sin()], i % 3, (i + 1) % 3)
    }

    /// Reference pair of legacy windows driven in lockstep with
    /// `FrameWindows`; membership and order must agree at every step.
    #[test]
    fn views_match_legacy_windows_exactly() {
        let (w, b, d) = (5, 3, 2);
        let mut frames = FrameWindows::new(w, b, d);
        let mut legacy_a = SlidingWindow::new(w);
        let mut legacy_b = BufferedWindow::new(b, w, d);
        for i in 0..40 {
            let (x, y, p) = obs(i);
            let lo = LabeledObservation::new(x.clone(), y, p);
            legacy_a.push(lo.clone());
            legacy_b.push(lo);
            frames.push(&x, y, p);
            if i == 17 {
                frames.clear_buffer();
                legacy_b.clear();
            }

            let a = frames.a_view();
            assert_eq!(a.len(), legacy_a.len(), "step {i}: A length");
            for (j, o) in legacy_a.iter().enumerate() {
                assert_eq!(a.features(j), o.features(), "step {i} A row {j}");
                assert_eq!(a.label(j), o.label());
                assert_eq!(a.prediction(j), o.prediction);
            }

            let s = frames.stale_view();
            assert_eq!(s.len(), legacy_b.stale().len(), "step {i}: B length");
            assert_eq!(frames.holding_len(), legacy_b.holding_len(), "step {i}: holding");
            for (j, o) in legacy_b.stale().iter().enumerate() {
                assert_eq!(s.features(j), o.features(), "step {i} B row {j}");
                assert_eq!(s.label(j), o.label());
            }
            assert_eq!(frames.a_is_full(), legacy_a.is_full());
            assert_eq!(frames.stale_is_full(), legacy_b.stale().is_full());
        }
    }

    #[test]
    fn moments_match_tracked_windows() {
        let (w, b, d) = (6, 4, 2);
        let mut frames = FrameWindows::new(w, b, d);
        let mut legacy_a = TrackedWindow::new(w, d);
        let mut legacy_b = BufferedWindow::new(b, w, d);
        for i in 0..60 {
            let (x, y, p) = obs(i);
            legacy_a.push(LabeledObservation::new(x.clone(), y, p));
            legacy_b.push(LabeledObservation::new(x.clone(), y, p));
            frames.push(&x, y, p);
            let ta = frames.a_tracked();
            let ts = frames.stale_tracked();
            for j in 0..d {
                assert_eq!(
                    ta.feature_moments(j).mean(),
                    legacy_a.feature_moments(j).mean(),
                    "step {i} A dim {j}"
                );
                assert_eq!(
                    ts.feature_moments(j).count(),
                    legacy_b.stale().feature_moments(j).count(),
                    "step {i} B dim {j}"
                );
                assert_eq!(
                    ts.feature_moments(j).mean(),
                    legacy_b.stale().feature_moments(j).mean(),
                    "step {i} B dim {j}"
                );
            }
            assert_eq!(ta.label_moments().mean(), legacy_a.label_moments().mean());
            assert_eq!(ts.label_moments().mean(), legacy_b.stale().label_moments().mean());
        }
    }

    #[test]
    fn zero_delay_graduates_immediately() {
        let mut frames = FrameWindows::new(4, 0, 1);
        frames.push(&[1.0], 0, 0);
        assert_eq!(frames.stale_len(), 1);
        assert_eq!(frames.holding_len(), 0);
        assert_eq!(frames.stale_view().features(0), &[1.0]);
    }

    #[test]
    fn frame_block_snapshots_a_view() {
        let mut frames = FrameWindows::new(3, 2, 2);
        for i in 0..7 {
            let (x, y, p) = obs(i);
            frames.push(&x, y, p);
        }
        let mut block = FrameBlock::new();
        block.copy_from(&frames.a_view());
        assert_eq!(block.len(), 3);
        assert_eq!(block.dims(), 2);
        for i in 0..3 {
            assert_eq!(block.features(i), frames.a_view().features(i));
            assert_eq!(block.label(i), frames.a_view().label(i));
            assert_eq!(block.prediction(i), frames.a_view().prediction(i));
        }
        // Reuse keeps capacity.
        let cap = block.features.capacity();
        block.copy_from(&frames.a_view());
        assert_eq!(block.features.capacity(), cap);
    }

    #[test]
    fn slice_source_matches_observations() {
        let obs: Vec<LabeledObservation> = (0..4)
            .map(|i| LabeledObservation::new(vec![i as f64], i % 2, (i + 1) % 2))
            .collect();
        let src: &[LabeledObservation] = &obs;
        assert_eq!(FrameSource::len(src), 4);
        assert_eq!(src.dims(), 1);
        assert_eq!(src.features(2), &[2.0]);
        assert_eq!(FrameSource::label(src, 3), 1);
        assert_eq!(src.prediction(0), 1);
    }

    /// Re-centers a maintained cross-sum around the exact window mean —
    /// the same correction the engine applies at evaluation time.
    fn centered_num(s: &SeqStats, view: &FrameView<'_>, dim: usize, lag: usize) -> f64 {
        let n = view.len();
        let get = |i: usize| view.features(i)[dim];
        let mean = (0..n).map(get).sum::<f64>() / n as f64;
        let k = s.shift();
        let d = mean - k;
        let head: f64 = (0..lag.min(n)).map(|i| get(i) - k).sum();
        let tail: f64 = (n.saturating_sub(lag)..n).map(|i| get(i) - k).sum();
        s.cross_sum(lag) - d * (2.0 * n as f64 * d - head - tail) + (n - lag) as f64 * d * d
    }

    /// The continuously maintained banks must agree with a from-scratch
    /// rebuild at every step — this exercises the neighbour plumbing in
    /// `step_stats` (ring ages, graduation, tiny-window fallbacks) that
    /// the `winstats` unit tests cannot see.
    #[test]
    fn stat_banks_match_fresh_rebuilds_every_step() {
        use crate::rng::{RandomSource, Xoshiro256pp};
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        for &(w, b) in &[(1usize, 0usize), (2, 1), (3, 2), (6, 4), (8, 0)] {
            let d = 2;
            let mut frames = FrameWindows::new(w, b, d);
            frames.enable_stats(4);
            for i in 0..300 {
                let x = vec![rng.random_range(-3.0..3.0), rng.random_range(0.0..1.0)];
                let y = rng.random_range(0..3usize);
                frames.push(&x, y, 0);
                if i == 140 {
                    frames.clear_buffer();
                }
                for (tracked, view, len) in [
                    (frames.a_tracked(), frames.a_view(), frames.a_len()),
                    (frames.stale_tracked(), frames.stale_view(), frames.stale_len()),
                ] {
                    for j in 0..d {
                        let got = tracked.feature_stats(j).expect("stats enabled");
                        assert!(got.is_valid(), "w{w} b{b} step {i} dim {j}");
                        assert_eq!(got.count(), len, "w{w} b{b} step {i} dim {j}");
                        let mut want = SeqStats::new(4);
                        want.rebuild(len, |i| view.features(i)[j]);
                        assert_eq!(got.turning_points(), want.turning_points());
                        assert_eq!(got.edges(), want.edges(), "w{w} b{b} step {i} dim {j}");
                        assert_eq!(got.joint(), want.joint(), "w{w} b{b} step {i} dim {j}");
                        if len > 2 {
                            for lag in [1usize, 2] {
                                let a = centered_num(got, &view, j, lag);
                                let e = centered_num(&want, &view, j, lag);
                                assert!(
                                    (a - e).abs() <= 1e-9 * (1.0 + e.abs()),
                                    "w{w} b{b} step {i} dim {j} lag {lag}: {a} vs {e}"
                                );
                            }
                        }
                    }
                    let got = tracked.label_stats().expect("stats enabled");
                    let mut want = SeqStats::new(4);
                    want.rebuild(len, |i| view.label(i) as f64);
                    assert_eq!(got.turning_points(), want.turning_points());
                    assert_eq!(got.joint(), want.joint(), "w{w} b{b} step {i} labels");
                }
            }
        }
    }

    #[test]
    fn enable_stats_is_idempotent_and_disable_drops() {
        let mut frames = FrameWindows::new(4, 2, 1);
        for i in 0..10 {
            frames.push(&[i as f64 * 0.3], i % 2, 0);
        }
        frames.enable_stats(8);
        let before = frames.a_tracked().feature_stats(0).unwrap().clone();
        // Re-enabling with the same resolution must not touch the state.
        frames.enable_stats(8);
        assert_eq!(frames.a_tracked().feature_stats(0).unwrap(), &before);
        assert_eq!(frames.stats_bins(), Some(8));
        frames.disable_stats();
        assert!(frames.a_tracked().feature_stats(0).is_none());
        assert!(frames.stale_tracked().label_stats().is_none());
        assert_eq!(frames.stats_bins(), None);
        assert_eq!(frames.a_tracked().window_tag(), 0);
        assert_eq!(frames.stale_tracked().window_tag(), 1);
    }

    #[test]
    fn rebuild_keeps_moments_consistent() {
        // Force many evictions through a tiny window to cross the rebuild
        // interval; the moments must stay equal to a batch recompute.
        let mut frames = FrameWindows::new(10, 1, 1);
        for i in 0..(TrackedWindow::REBUILD_INTERVAL + 50) {
            frames.push(&[(i as f64 * 0.13).sin()], i % 2, 0);
        }
        let view = frames.a_view();
        let mean: f64 =
            (0..view.len()).map(|i| view.features(i)[0]).sum::<f64>() / view.len() as f64;
        assert!((frames.a_tracked().feature_moments(0).mean() - mean).abs() < 1e-9);
    }
}
