//! Structure-of-arrays frame storage: the hot-path replacement for
//! per-observation `LabeledObservation` clones.
//!
//! Algorithm 1 pushes every observation into the active window `A` *and*
//! the delayed buffer `B`. Storing each window as a `VecDeque` of owned
//! observations costs two heap-allocated feature vectors per step plus the
//! clone traffic itself — none of which the algorithm needs, because both
//! windows are views over the same most-recent `b + w` frames of the
//! stream.
//!
//! [`FrameStore`] keeps exactly those frames once, as three parallel
//! columns (a flat row-major `f64` feature arena, labels, predictions) in a
//! fixed ring. [`FrameWindows`] layers the two windows of Algorithm 1 over
//! it as *views by age* and maintains the incremental feature/label
//! [`Moments`] the fingerprint engine's tracked mode consumes.
//! [`FrameSource`] is the read interface shared by ring views, owned
//! [`FrameBlock`] snapshots and plain `[LabeledObservation]` slices, so
//! extraction code is written once and runs allocation-free over any of
//! them.

use crate::observation::LabeledObservation;
use crate::stats::Moments;
use crate::window::TrackedWindow;

/// Read access to a window of frames, index `0` = oldest, `len - 1` =
/// newest — the iteration order every extraction pass uses.
pub trait FrameSource {
    /// Number of frames.
    fn len(&self) -> usize;

    /// Feature dimensionality of each frame (0 when empty and unknown).
    fn dims(&self) -> usize;

    /// Feature row of frame `i` (oldest-first indexing).
    fn features(&self, i: usize) -> &[f64];

    /// Ground-truth label of frame `i`.
    fn label(&self, i: usize) -> usize;

    /// Prequential prediction recorded with frame `i`.
    fn prediction(&self, i: usize) -> usize;

    /// Whether the source holds no frames.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Incrementally maintained moment accumulators accompanying a frame
/// window, substituted for the batch moment sweep by the engine's
/// incremental-moments mode.
pub trait MomentSource {
    /// Number of tracked feature dimensions.
    fn n_feature_moments(&self) -> usize;

    /// Moment accumulator for feature dimension `j`.
    fn feature_moments(&self, j: usize) -> &Moments;

    /// Moment accumulator for the label sequence.
    fn label_moments(&self) -> &Moments;
}

impl FrameSource for [LabeledObservation] {
    fn len(&self) -> usize {
        <[LabeledObservation]>::len(self)
    }

    fn dims(&self) -> usize {
        self.first().map_or(0, |o| o.features().len())
    }

    fn features(&self, i: usize) -> &[f64] {
        self[i].features()
    }

    fn label(&self, i: usize) -> usize {
        self[i].label()
    }

    fn prediction(&self, i: usize) -> usize {
        self[i].prediction
    }
}

impl FrameSource for TrackedWindow {
    fn len(&self) -> usize {
        TrackedWindow::len(self)
    }

    fn dims(&self) -> usize {
        self.n_features()
    }

    fn features(&self, i: usize) -> &[f64] {
        self.get(i).features()
    }

    fn label(&self, i: usize) -> usize {
        self.get(i).label()
    }

    fn prediction(&self, i: usize) -> usize {
        self.get(i).prediction
    }
}

impl MomentSource for TrackedWindow {
    fn n_feature_moments(&self) -> usize {
        self.n_features()
    }

    fn feature_moments(&self, j: usize) -> &Moments {
        TrackedWindow::feature_moments(self, j)
    }

    fn label_moments(&self) -> &Moments {
        TrackedWindow::label_moments(self)
    }
}

/// A fixed-capacity ring of the most recent frames, stored as parallel
/// columns: features in one flat row-major `f64` arena, labels and
/// predictions alongside. Rows are addressed by *age* (0 = newest).
#[derive(Debug, Clone)]
pub struct FrameStore {
    dims: usize,
    rows: usize,
    /// Ring slot the next frame will be written to.
    head: usize,
    /// Total frames ever pushed.
    pushed: u64,
    features: Vec<f64>,
    labels: Vec<usize>,
    preds: Vec<usize>,
}

impl FrameStore {
    /// Ring keeping the `rows` most recent frames of `dims` features each.
    pub fn new(rows: usize, dims: usize) -> Self {
        assert!(rows > 0, "frame store capacity must be positive");
        Self {
            dims,
            rows,
            head: 0,
            pushed: 0,
            features: vec![0.0; rows * dims],
            labels: vec![0; rows],
            preds: vec![0; rows],
        }
    }

    /// Overwrites the oldest slot with a new frame.
    pub fn push(&mut self, x: &[f64], label: usize, prediction: usize) {
        debug_assert_eq!(x.len(), self.dims);
        let at = self.head * self.dims;
        self.features[at..at + self.dims].copy_from_slice(x);
        self.labels[self.head] = label;
        self.preds[self.head] = prediction;
        self.head = (self.head + 1) % self.rows;
        self.pushed += 1;
    }

    /// Frames currently resident (`min(pushed, capacity)`).
    pub fn len(&self) -> usize {
        self.pushed.min(self.rows as u64) as usize
    }

    /// Whether no frame has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Total frames ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Feature dimensionality per frame.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Ring capacity in rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn slot_of_age(&self, age: usize) -> usize {
        debug_assert!(age < self.len(), "age {age} out of {} resident rows", self.len());
        (self.head + self.rows - 1 - age) % self.rows
    }

    /// Feature row of the frame `age` pushes ago (0 = newest).
    pub fn features_at_age(&self, age: usize) -> &[f64] {
        let at = self.slot_of_age(age) * self.dims;
        &self.features[at..at + self.dims]
    }

    /// Label of the frame `age` pushes ago.
    pub fn label_at_age(&self, age: usize) -> usize {
        self.labels[self.slot_of_age(age)]
    }

    /// Prediction of the frame `age` pushes ago.
    pub fn prediction_at_age(&self, age: usize) -> usize {
        self.preds[self.slot_of_age(age)]
    }

    /// A borrowed window over the frames with ages
    /// `[newest_age, newest_age + len)`.
    pub fn view(&self, newest_age: usize, len: usize) -> FrameView<'_> {
        debug_assert!(len == 0 || newest_age + len <= self.len());
        FrameView { store: self, newest_age, len }
    }
}

/// A borrowed, age-addressed window over a [`FrameStore`]; cheap to copy
/// and safe to share across scan worker threads.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    store: &'a FrameStore,
    newest_age: usize,
    len: usize,
}

impl FrameView<'_> {
    fn age_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        self.newest_age + self.len - 1 - i
    }
}

impl FrameSource for FrameView<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn dims(&self) -> usize {
        self.store.dims
    }

    fn features(&self, i: usize) -> &[f64] {
        self.store.features_at_age(self.age_of(i))
    }

    fn label(&self, i: usize) -> usize {
        self.store.label_at_age(self.age_of(i))
    }

    fn prediction(&self, i: usize) -> usize {
        self.store.prediction_at_age(self.age_of(i))
    }
}

/// An owned, contiguous SoA snapshot of a frame window. The drift path
/// copies the active window into one of these (a single flat memcpy-style
/// pass, reusing capacity across drifts) so model selection can run while
/// the ring keeps advancing semantics simple.
#[derive(Debug, Clone, Default)]
pub struct FrameBlock {
    dims: usize,
    len: usize,
    features: Vec<f64>,
    labels: Vec<usize>,
    preds: Vec<usize>,
}

impl FrameBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the contents with a copy of `src`, keeping capacity.
    pub fn copy_from<S: FrameSource + ?Sized>(&mut self, src: &S) {
        self.dims = src.dims();
        self.len = src.len();
        self.features.clear();
        self.labels.clear();
        self.preds.clear();
        for i in 0..self.len {
            self.features.extend_from_slice(src.features(i));
            self.labels.push(src.label(i));
            self.preds.push(src.prediction(i));
        }
    }

    /// Drops the contents, keeping capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.features.clear();
        self.labels.clear();
        self.preds.clear();
    }
}

impl FrameSource for FrameBlock {
    fn len(&self) -> usize {
        self.len
    }

    fn dims(&self) -> usize {
        self.dims
    }

    fn features(&self, i: usize) -> &[f64] {
        let at = i * self.dims;
        &self.features[at..at + self.dims]
    }

    fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    fn prediction(&self, i: usize) -> usize {
        self.preds[i]
    }
}

/// A frame view paired with its window's incremental moments — what the
/// engine's tracked extraction entry points consume.
#[derive(Debug, Clone, Copy)]
pub struct TrackedFrames<'a> {
    view: FrameView<'a>,
    feat: &'a [Moments],
    label: &'a Moments,
}

impl FrameSource for TrackedFrames<'_> {
    fn len(&self) -> usize {
        self.view.len()
    }

    fn dims(&self) -> usize {
        self.view.dims()
    }

    fn features(&self, i: usize) -> &[f64] {
        self.view.features(i)
    }

    fn label(&self, i: usize) -> usize {
        self.view.label(i)
    }

    fn prediction(&self, i: usize) -> usize {
        self.view.prediction(i)
    }
}

impl MomentSource for TrackedFrames<'_> {
    fn n_feature_moments(&self) -> usize {
        self.feat.len()
    }

    fn feature_moments(&self, j: usize) -> &Moments {
        &self.feat[j]
    }

    fn label_moments(&self) -> &Moments {
        self.label
    }
}

/// Algorithm 1's two windows as views over one shared [`FrameStore`].
///
/// * the active window `A` — the `w` newest frames (ages `[0, w)`),
/// * the stale window `B` — graduates of the delay buffer, frames between
///   `b` and `b + w` steps old (ages `[b, b + w)`),
/// * the holding buffer — the `≤ b` newest frames not yet graduated.
///
/// The windows share one arena of `b + w` rows; pushing a frame is one
/// ring write plus O(d) moment updates, with no per-observation
/// allocation. `A` and `B` keep the same membership, iteration order,
/// eviction schedule and moment-rebuild cadence as the legacy
/// [`TrackedWindow`] / [`crate::window::BufferedWindow`] pair; clearing
/// the buffer after a drift is a logical restart (frames pushed before
/// the clear never graduate), exactly like clearing the legacy buffer.
#[derive(Debug, Clone)]
pub struct FrameWindows {
    store: FrameStore,
    window: usize,
    delay: usize,
    /// `pushed` count at the last buffer clear; frames older than this
    /// never graduate into the stale window.
    s_start: u64,
    a_feat: Vec<Moments>,
    a_label: Moments,
    a_evictions: usize,
    s_feat: Vec<Moments>,
    s_label: Moments,
    s_evictions: usize,
}

impl FrameWindows {
    /// Windows of `window` frames with a graduation delay of `delay`
    /// frames, over `dims`-dimensional observations.
    pub fn new(window: usize, delay: usize, dims: usize) -> Self {
        assert!(window > 0, "window capacity must be positive");
        Self {
            store: FrameStore::new(window + delay, dims),
            window,
            delay,
            s_start: 0,
            a_feat: vec![Moments::new(); dims],
            a_label: Moments::new(),
            a_evictions: 0,
            s_feat: vec![Moments::new(); dims],
            s_label: Moments::new(),
            s_evictions: 0,
        }
    }

    /// Configured window size `w`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Configured delay `b`.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Frames currently in the active window `A`.
    pub fn a_len(&self) -> usize {
        self.store.pushed.min(self.window as u64) as usize
    }

    /// Whether `A` has reached capacity.
    pub fn a_is_full(&self) -> bool {
        self.a_len() == self.window
    }

    /// Frames currently in the stale window `B`.
    pub fn stale_len(&self) -> usize {
        (self.store.pushed - self.s_start)
            .saturating_sub(self.delay as u64)
            .min(self.window as u64) as usize
    }

    /// Whether `B` has reached capacity.
    pub fn stale_is_full(&self) -> bool {
        self.stale_len() == self.window
    }

    /// Frames held back in the delay buffer (not yet graduated).
    pub fn holding_len(&self) -> usize {
        (self.store.pushed - self.s_start).min(self.delay as u64) as usize
    }

    /// The backing frame arena.
    pub fn store(&self) -> &FrameStore {
        &self.store
    }

    /// Pushes one frame into the shared arena, updating both windows'
    /// membership and moments. Ring reads of outgoing frames happen before
    /// the slot overwrite; moment edit order (admit new, then retire
    /// outgoing) matches [`TrackedWindow::push`].
    pub fn push(&mut self, x: &[f64], label: usize, prediction: usize) {
        let (w, b) = (self.window, self.delay);
        let n_a = self.a_len();
        let s_len = self.stale_len();
        let graduates = self.store.pushed - self.s_start >= b as u64;

        for (m, &v) in self.a_feat.iter_mut().zip(x) {
            m.push(v);
        }
        self.a_label.push(label as f64);
        if n_a == w {
            let out = self.store.features_at_age(w - 1);
            for (m, &v) in self.a_feat.iter_mut().zip(out) {
                m.remove(v);
            }
            self.a_label.remove(self.store.label_at_age(w - 1) as f64);
            self.a_evictions += 1;
        }

        if graduates {
            // The frame crossing age `b` enters the stale window; with a
            // zero delay that is the incoming frame itself.
            if b == 0 {
                for (m, &v) in self.s_feat.iter_mut().zip(x) {
                    m.push(v);
                }
                self.s_label.push(label as f64);
            } else {
                let g = self.store.features_at_age(b - 1);
                for (m, &v) in self.s_feat.iter_mut().zip(g) {
                    m.push(v);
                }
                self.s_label.push(self.store.label_at_age(b - 1) as f64);
            }
            if s_len == w {
                let out = self.store.features_at_age(b + w - 1);
                for (m, &v) in self.s_feat.iter_mut().zip(out) {
                    m.remove(v);
                }
                self.s_label.remove(self.store.label_at_age(b + w - 1) as f64);
                self.s_evictions += 1;
            }
        }

        self.store.push(x, label, prediction);

        if self.a_evictions >= TrackedWindow::REBUILD_INTERVAL {
            self.rebuild_a();
        }
        if self.s_evictions >= TrackedWindow::REBUILD_INTERVAL {
            self.rebuild_s();
        }
    }

    /// Logically empties the delay buffer and stale window (the ring keeps
    /// its frames; they simply never graduate). The active window is
    /// untouched, mirroring the legacy post-drift `buffer.clear()`.
    pub fn clear_buffer(&mut self) {
        self.s_start = self.store.pushed;
        for m in &mut self.s_feat {
            m.reset();
        }
        self.s_label.reset();
        self.s_evictions = 0;
    }

    /// View over the active window `A`, oldest first.
    pub fn a_view(&self) -> FrameView<'_> {
        self.store.view(0, self.a_len())
    }

    /// View over the stale window `B`, oldest first.
    pub fn stale_view(&self) -> FrameView<'_> {
        self.store.view(self.delay, self.stale_len())
    }

    /// The active window paired with its incremental moments.
    pub fn a_tracked(&self) -> TrackedFrames<'_> {
        TrackedFrames { view: self.a_view(), feat: &self.a_feat, label: &self.a_label }
    }

    /// The stale window paired with its incremental moments.
    pub fn stale_tracked(&self) -> TrackedFrames<'_> {
        TrackedFrames { view: self.stale_view(), feat: &self.s_feat, label: &self.s_label }
    }

    fn rebuild_a(&mut self) {
        for m in &mut self.a_feat {
            m.reset();
        }
        self.a_label.reset();
        let view = self.store.view(0, self.a_len());
        for i in 0..view.len() {
            for (m, &v) in self.a_feat.iter_mut().zip(view.features(i)) {
                m.push(v);
            }
            self.a_label.push(view.label(i) as f64);
        }
        self.a_evictions = 0;
    }

    fn rebuild_s(&mut self) {
        for m in &mut self.s_feat {
            m.reset();
        }
        self.s_label.reset();
        let view = self.store.view(self.delay, self.stale_len());
        for i in 0..view.len() {
            for (m, &v) in self.s_feat.iter_mut().zip(view.features(i)) {
                m.push(v);
            }
            self.s_label.push(view.label(i) as f64);
        }
        self.s_evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{BufferedWindow, SlidingWindow};

    fn obs(i: usize) -> (Vec<f64>, usize, usize) {
        (vec![i as f64, (i as f64 * 0.7).sin()], i % 3, (i + 1) % 3)
    }

    /// Reference pair of legacy windows driven in lockstep with
    /// `FrameWindows`; membership and order must agree at every step.
    #[test]
    fn views_match_legacy_windows_exactly() {
        let (w, b, d) = (5, 3, 2);
        let mut frames = FrameWindows::new(w, b, d);
        let mut legacy_a = SlidingWindow::new(w);
        let mut legacy_b = BufferedWindow::new(b, w, d);
        for i in 0..40 {
            let (x, y, p) = obs(i);
            let lo = LabeledObservation::new(x.clone(), y, p);
            legacy_a.push(lo.clone());
            legacy_b.push(lo);
            frames.push(&x, y, p);
            if i == 17 {
                frames.clear_buffer();
                legacy_b.clear();
            }

            let a = frames.a_view();
            assert_eq!(a.len(), legacy_a.len(), "step {i}: A length");
            for (j, o) in legacy_a.iter().enumerate() {
                assert_eq!(a.features(j), o.features(), "step {i} A row {j}");
                assert_eq!(a.label(j), o.label());
                assert_eq!(a.prediction(j), o.prediction);
            }

            let s = frames.stale_view();
            assert_eq!(s.len(), legacy_b.stale().len(), "step {i}: B length");
            assert_eq!(frames.holding_len(), legacy_b.holding_len(), "step {i}: holding");
            for (j, o) in legacy_b.stale().iter().enumerate() {
                assert_eq!(s.features(j), o.features(), "step {i} B row {j}");
                assert_eq!(s.label(j), o.label());
            }
            assert_eq!(frames.a_is_full(), legacy_a.is_full());
            assert_eq!(frames.stale_is_full(), legacy_b.stale().is_full());
        }
    }

    #[test]
    fn moments_match_tracked_windows() {
        let (w, b, d) = (6, 4, 2);
        let mut frames = FrameWindows::new(w, b, d);
        let mut legacy_a = TrackedWindow::new(w, d);
        let mut legacy_b = BufferedWindow::new(b, w, d);
        for i in 0..60 {
            let (x, y, p) = obs(i);
            legacy_a.push(LabeledObservation::new(x.clone(), y, p));
            legacy_b.push(LabeledObservation::new(x.clone(), y, p));
            frames.push(&x, y, p);
            let ta = frames.a_tracked();
            let ts = frames.stale_tracked();
            for j in 0..d {
                assert_eq!(
                    ta.feature_moments(j).mean(),
                    legacy_a.feature_moments(j).mean(),
                    "step {i} A dim {j}"
                );
                assert_eq!(
                    ts.feature_moments(j).count(),
                    legacy_b.stale().feature_moments(j).count(),
                    "step {i} B dim {j}"
                );
                assert_eq!(
                    ts.feature_moments(j).mean(),
                    legacy_b.stale().feature_moments(j).mean(),
                    "step {i} B dim {j}"
                );
            }
            assert_eq!(ta.label_moments().mean(), legacy_a.label_moments().mean());
            assert_eq!(ts.label_moments().mean(), legacy_b.stale().label_moments().mean());
        }
    }

    #[test]
    fn zero_delay_graduates_immediately() {
        let mut frames = FrameWindows::new(4, 0, 1);
        frames.push(&[1.0], 0, 0);
        assert_eq!(frames.stale_len(), 1);
        assert_eq!(frames.holding_len(), 0);
        assert_eq!(frames.stale_view().features(0), &[1.0]);
    }

    #[test]
    fn frame_block_snapshots_a_view() {
        let mut frames = FrameWindows::new(3, 2, 2);
        for i in 0..7 {
            let (x, y, p) = obs(i);
            frames.push(&x, y, p);
        }
        let mut block = FrameBlock::new();
        block.copy_from(&frames.a_view());
        assert_eq!(block.len(), 3);
        assert_eq!(block.dims(), 2);
        for i in 0..3 {
            assert_eq!(block.features(i), frames.a_view().features(i));
            assert_eq!(block.label(i), frames.a_view().label(i));
            assert_eq!(block.prediction(i), frames.a_view().prediction(i));
        }
        // Reuse keeps capacity.
        let cap = block.features.capacity();
        block.copy_from(&frames.a_view());
        assert_eq!(block.features.capacity(), cap);
    }

    #[test]
    fn slice_source_matches_observations() {
        let obs: Vec<LabeledObservation> = (0..4)
            .map(|i| LabeledObservation::new(vec![i as f64], i % 2, (i + 1) % 2))
            .collect();
        let src: &[LabeledObservation] = &obs;
        assert_eq!(FrameSource::len(src), 4);
        assert_eq!(src.dims(), 1);
        assert_eq!(src.features(2), &[2.0]);
        assert_eq!(FrameSource::label(src, 3), 1);
        assert_eq!(src.prediction(0), 1);
    }

    #[test]
    fn rebuild_keeps_moments_consistent() {
        // Force many evictions through a tiny window to cross the rebuild
        // interval; the moments must stay equal to a batch recompute.
        let mut frames = FrameWindows::new(10, 1, 1);
        for i in 0..(TrackedWindow::REBUILD_INTERVAL + 50) {
            frames.push(&[(i as f64 * 0.13).sin()], i % 2, 0);
        }
        let view = frames.a_view();
        let mean: f64 =
            (0..view.len()).map(|i| view.features(i)[0]).sum::<f64>() / view.len() as f64;
        assert!((frames.a_tracked().feature_moments(0).mean() - mean).abs() < 1e-9);
    }
}
