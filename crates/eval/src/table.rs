//! Paper-style result table formatting.

use crate::stats::mean_std;

/// Formats a `mean (std)` cell the way the paper's tables print them.
pub fn format_cell(values: &[f64]) -> String {
    let (m, s) = mean_std(values);
    format!("{m:.2} ({s:.2})")
}

/// A simple aligned text table with per-row (or per-column) best-marking.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// Table with the given column headers (first column is the row label).
    pub fn new(columns: &[&str]) -> Self {
        Self { header: columns.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    pub fn add_row(&mut self, label: &str, cells: Vec<String>) {
        assert_eq!(cells.len() + 1, self.header.len(), "row width must match header");
        self.rows.push((label.to_string(), cells));
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for (label, cells) in &self.rows {
            widths[0] = widths[0].max(label.len());
            for (i, c) in cells.iter().enumerate() {
                widths[i + 1] = widths[i + 1].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cols: Vec<&str>, widths: &[usize]| -> String {
            cols.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(self.header.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for (label, cells) in &self.rows {
            let mut cols = vec![label.as_str()];
            cols.extend(cells.iter().map(String::as_str));
            out.push_str(&fmt_row(cols, &widths));
            out.push('\n');
        }
        out
    }
}

/// Marks the best (max) value in a slice of means with a `*`, returning the
/// formatted cells. Used to reproduce the paper's bolding.
pub fn mark_best(cells: &[(f64, String)]) -> Vec<String> {
    let best = cells.iter().map(|(m, _)| *m).fold(f64::NEG_INFINITY, f64::max);
    cells
        .iter()
        .map(|(m, s)| {
            if (*m - best).abs() < 1e-12 {
                format!("*{s}")
            } else {
                s.clone()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formatting() {
        assert_eq!(format_cell(&[0.93, 0.95]), "0.94 (0.01)");
        assert_eq!(format_cell(&[1.0]), "1.00 (0.00)");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Dataset", "ER", "FiCSUM"]);
        t.add_row("STAGGER", vec!["0.98 (0.00)".into(), "0.97 (0.02)".into()]);
        t.add_row("RBF", vec!["0.75 (0.04)".into(), "0.73 (0.03)".into()]);
        let r = t.render();
        assert!(r.contains("STAGGER"));
        assert!(r.lines().count() == 4);
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[2].find("0.98"), lines[3].find("0.75"), "columns align");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row("x", vec!["1".into(), "2".into()]);
    }

    #[test]
    fn best_marking() {
        let cells = vec![(0.9, "0.90".to_string()), (0.95, "0.95".to_string())];
        assert_eq!(mark_best(&cells), vec!["0.90".to_string(), "*0.95".to_string()]);
    }
}
