//! Run-level observability summary derived *solely* from recorded signals.
//!
//! The evaluation runner attaches an [`InMemoryRecorder`] to the system
//! under test and, after the run, reduces the recorded event stream and
//! stage spans into the quantities the paper's analysis discusses but its
//! tables omit: how *fast* drifts are noticed (detection delay), how often
//! the detector cries wolf (false alarms) and where the compute goes
//! (per-stage cost). Nothing here peeks at system internals — if it is not
//! in the recorder, it is not in the summary.

use ficsum_obs::{InMemoryRecorder, Stage};

/// Aggregated cost of one pipeline stage over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCost {
    /// Which stage.
    pub stage: Stage,
    /// Number of recorded executions.
    pub count: u64,
    /// Total nanoseconds across executions.
    pub total_nanos: u64,
    /// Mean nanoseconds per execution.
    pub mean_nanos: f64,
    /// Approximate 90th-percentile nanoseconds (factor-of-two resolution,
    /// from the log-bucketed histogram).
    pub p90_nanos: u64,
}

/// What the recorder saw during one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSummary {
    /// Total recorded events of any kind.
    pub n_events: usize,
    /// `DriftDetected` events.
    pub n_drifts: u64,
    /// `ConceptSwitch` events.
    pub n_switches: u64,
    /// Ground-truth concept changes the stream contained (after `grace`).
    pub n_truth_changes: u64,
    /// Truth changes matched by a drift within the detection window.
    pub detected: u64,
    /// Truth changes no drift matched.
    pub missed: u64,
    /// Drift events matching no truth change (fired outside every
    /// detection window, after `grace`).
    pub false_alarms: u64,
    /// Mean observations between a truth change and its matching drift
    /// (`None` when nothing was detected).
    pub mean_detection_delay: Option<f64>,
    /// Per-stage execution costs, in [`Stage`] order, for stages that
    /// recorded at least one span.
    pub stage_costs: Vec<StageCost>,
}

impl ObsSummary {
    /// Reduces a recorded run against the ground-truth concept-change
    /// points `truth_changes` (observation indices, ascending).
    ///
    /// Matching is greedy and one-to-one: each truth change at `c`
    /// consumes the earliest unconsumed drift event in
    /// `(c, c + detection_window]`. Drifts before `grace` are ignored
    /// entirely (warm-up); unconsumed drifts after it are false alarms.
    pub fn from_recorder(
        recorder: &InMemoryRecorder,
        truth_changes: &[u64],
        grace: u64,
        detection_window: u64,
    ) -> Self {
        let drifts = recorder.drift_points();
        let mut consumed = vec![false; drifts.len()];
        let mut detected = 0u64;
        let mut missed = 0u64;
        let mut delay_sum = 0.0;
        let relevant_changes: Vec<u64> =
            truth_changes.iter().copied().filter(|&c| c >= grace).collect();
        for &c in &relevant_changes {
            let hit = drifts
                .iter()
                .enumerate()
                .find(|&(i, &d)| !consumed[i] && d > c && d <= c + detection_window);
            match hit {
                Some((i, &d)) => {
                    consumed[i] = true;
                    detected += 1;
                    delay_sum += (d - c) as f64;
                }
                None => missed += 1,
            }
        }
        let false_alarms = drifts
            .iter()
            .zip(&consumed)
            .filter(|&(&d, &used)| !used && d >= grace)
            .count() as u64;

        let stage_costs = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let h = recorder.stage_histogram(stage)?;
                Some(StageCost {
                    stage,
                    count: h.count(),
                    total_nanos: h.sum_nanos(),
                    mean_nanos: h.mean_nanos(),
                    p90_nanos: h.quantile_nanos(0.9),
                })
            })
            .collect();

        Self {
            n_events: recorder.events().len(),
            n_drifts: drifts.len() as u64,
            n_switches: recorder.concept_switches().len() as u64,
            n_truth_changes: relevant_changes.len() as u64,
            detected,
            missed,
            false_alarms,
            mean_detection_delay: (detected > 0).then(|| delay_sum / detected as f64),
            stage_costs,
        }
    }

    /// Fraction of truth changes detected in time (1.0 when the stream had
    /// none).
    pub fn detection_rate(&self) -> f64 {
        if self.n_truth_changes == 0 {
            1.0
        } else {
            self.detected as f64 / self.n_truth_changes as f64
        }
    }

    /// Total nanoseconds recorded across all stages.
    pub fn total_stage_nanos(&self) -> u64 {
        self.stage_costs.iter().map(|c| c.total_nanos).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_obs::{DriftTrigger, Recorder, StreamEvent};

    fn recorder_with_drifts(points: &[u64]) -> InMemoryRecorder {
        let mut r = InMemoryRecorder::new();
        for &t in points {
            r.event(t, StreamEvent::DriftDetected { trigger: DriftTrigger::Detector });
        }
        r
    }

    #[test]
    fn greedy_matching_counts_delays_and_false_alarms() {
        // Truth changes at 1000 and 3000; drifts at 1100 (match, delay
        // 100), 1900 (false alarm) and 3500 (match, delay 500).
        let r = recorder_with_drifts(&[1100, 1900, 3500]);
        let s = ObsSummary::from_recorder(&r, &[1000, 3000], 0, 600);
        assert_eq!(s.detected, 2);
        assert_eq!(s.missed, 0);
        assert_eq!(s.false_alarms, 1);
        assert_eq!(s.mean_detection_delay, Some(300.0));
        assert_eq!(s.detection_rate(), 1.0);
    }

    #[test]
    fn late_drifts_are_misses_plus_false_alarms() {
        let r = recorder_with_drifts(&[2500]);
        let s = ObsSummary::from_recorder(&r, &[1000], 0, 600);
        assert_eq!(s.detected, 0);
        assert_eq!(s.missed, 1);
        assert_eq!(s.false_alarms, 1);
        assert!(s.mean_detection_delay.is_none());
    }

    #[test]
    fn grace_period_exempts_warmup_fires() {
        let r = recorder_with_drifts(&[100, 1100]);
        let s = ObsSummary::from_recorder(&r, &[50, 1000], 500, 600);
        // The change at 50 and the fire at 100 both fall inside grace.
        assert_eq!(s.n_truth_changes, 1);
        assert_eq!(s.detected, 1);
        assert_eq!(s.false_alarms, 0);
    }

    #[test]
    fn stage_costs_come_from_histograms() {
        let mut r = InMemoryRecorder::new();
        r.span(Stage::Extract, 1_000);
        r.span(Stage::Extract, 3_000);
        r.span(Stage::DriftCheck, 500);
        let s = ObsSummary::from_recorder(&r, &[], 0, 100);
        assert_eq!(s.stage_costs.len(), 2);
        let extract = s.stage_costs.iter().find(|c| c.stage == Stage::Extract).unwrap();
        assert_eq!(extract.count, 2);
        assert_eq!(extract.total_nanos, 4_000);
        assert_eq!(s.total_stage_nanos(), 4_500);
    }
}
