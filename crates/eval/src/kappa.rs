//! Prequential kappa statistic.

/// Cohen's kappa computed over a prequential (test-then-train) run.
///
/// `kappa = (p0 - pc) / (1 - pc)` where `p0` is the observed accuracy and
/// `pc` the agreement expected by chance from the confusion-matrix
/// marginals. Kappa corrects for class imbalance, which is why the paper
/// reports it instead of raw accuracy.
#[derive(Debug, Clone)]
pub struct KappaEvaluator {
    /// `confusion[truth][predicted]`.
    confusion: Vec<Vec<u64>>,
    n: u64,
}

impl KappaEvaluator {
    /// Evaluator over `n_classes` labels.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes >= 2);
        Self { confusion: vec![vec![0; n_classes]; n_classes], n: 0 }
    }

    /// Records one (truth, prediction) pair. Out-of-range labels are
    /// clamped into the final class so malformed predictions still count
    /// as errors rather than panicking.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        let k = self.confusion.len();
        self.confusion[truth.min(k - 1)][predicted.min(k - 1)] += 1;
        self.n += 1;
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Observed accuracy `p0`.
    pub fn accuracy(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.confusion.len()).map(|i| self.confusion[i][i]).sum();
        correct as f64 / self.n as f64
    }

    /// Chance agreement `pc` from the marginals.
    pub fn chance_agreement(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let k = self.confusion.len();
        let n = self.n as f64;
        (0..k)
            .map(|c| {
                let row: u64 = self.confusion[c].iter().sum();
                let col: u64 = (0..k).map(|r| self.confusion[r][c]).sum();
                (row as f64 / n) * (col as f64 / n)
            })
            .sum()
    }

    /// The kappa statistic; 0 when degenerate (empty, or a constant
    /// predictor over a constant truth).
    pub fn kappa(&self) -> f64 {
        let pc = self.chance_agreement();
        if (1.0 - pc).abs() < 1e-12 {
            return 0.0;
        }
        (self.accuracy() - pc) / (1.0 - pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictor_has_kappa_one() {
        let mut k = KappaEvaluator::new(3);
        for c in 0..3 {
            for _ in 0..10 {
                k.record(c, c);
            }
        }
        assert!((k.kappa() - 1.0).abs() < 1e-12);
        assert_eq!(k.accuracy(), 1.0);
    }

    #[test]
    fn random_predictor_has_kappa_near_zero() {
        // Uniform truth, uniform independent predictions.
        let mut k = KappaEvaluator::new(2);
        for i in 0..1000 {
            k.record(i % 2, (i / 2) % 2);
        }
        assert!(k.kappa().abs() < 0.01, "kappa {}", k.kappa());
    }

    #[test]
    fn majority_predictor_on_imbalanced_truth_has_kappa_zero() {
        // 90% of truth is class 0; always predicting 0 gives accuracy 0.9
        // but kappa 0 — the exact imbalance correction the paper relies on.
        let mut k = KappaEvaluator::new(2);
        for i in 0..1000 {
            k.record(if i % 10 == 0 { 1 } else { 0 }, 0);
        }
        assert!((k.accuracy() - 0.9).abs() < 1e-9);
        assert!(k.kappa().abs() < 1e-9, "kappa {}", k.kappa());
    }

    #[test]
    fn out_of_range_labels_are_clamped() {
        let mut k = KappaEvaluator::new(2);
        k.record(0, 99); // counts as prediction of class 1: an error
        k.record(0, 0);
        assert_eq!(k.count(), 2);
        assert!((k.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_is_zero() {
        let k = KappaEvaluator::new(2);
        assert_eq!(k.kappa(), 0.0);
        assert_eq!(k.accuracy(), 0.0);
    }

    #[test]
    fn partial_agreement_is_between_zero_and_one() {
        let mut k = KappaEvaluator::new(2);
        // 80% correct, balanced classes.
        for i in 0..1000 {
            let truth = i % 2;
            let pred = if i % 5 == 0 { 1 - truth } else { truth };
            k.record(truth, pred);
        }
        let kappa = k.kappa();
        assert!((0.55..0.65).contains(&kappa), "kappa {kappa}"); // 2*0.8-1 = 0.6
    }
}
