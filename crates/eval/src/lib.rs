//! Evaluation layer for the FiCSUM reproduction.
//!
//! Implements every quantity the paper's evaluation reports:
//!
//! * the prequential **kappa statistic** ([`kappa::KappaEvaluator`]),
//! * the **co-occurrence F1** (C-F1, Section II of the paper) measuring how
//!   well system model identities track ground-truth concepts
//!   ([`cf1::CoOccurrenceF1`]),
//! * **discrimination ability** aggregation ([`runner`]),
//! * the **Friedman test** with Nemenyi post-hoc critical differences over
//!   per-dataset ranks ([`stats`]),
//! * a generic prequential [`runner`] driving any [`EvaluatedSystem`] over a
//!   stream and collecting all of the above, plus paper-style table
//!   formatting ([`table`]).

pub mod cf1;
pub mod kappa;
pub mod observability;
pub mod report;
pub mod runner;
pub mod stats;
pub mod table;

pub use cf1::CoOccurrenceF1;
pub use observability::{ObsSummary, StageCost};
pub use report::{CellReport, ExperimentReport};
pub use kappa::KappaEvaluator;
pub use runner::{evaluate_with, EvaluatedSystem, RunOptions, RunResult};
pub use stats::{friedman_test, mean_std, nemenyi_critical_difference, rank_rows, FriedmanOutcome};
pub use table::{format_cell, Table};
