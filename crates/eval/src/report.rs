//! Machine-readable experiment reports (JSON export).
//!
//! Experiment binaries print human tables; this module additionally lets
//! harness code persist structured results so downstream tooling (plots,
//! regression tracking) can consume them without re-parsing text.

use crate::runner::RunResult;
use crate::stats::mean_std;

/// One (dataset, system) cell aggregated over seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Dataset name.
    pub dataset: String,
    /// System / variant name.
    pub system: String,
    /// Per-seed kappa values.
    pub kappa: Vec<f64>,
    /// Per-seed accuracy values.
    pub accuracy: Vec<f64>,
    /// Per-seed C-F1 values.
    pub c_f1: Vec<f64>,
    /// Per-seed runtimes (seconds).
    pub runtime_s: Vec<f64>,
    /// Per-seed discrimination values (absent entries skipped).
    pub discrimination: Vec<f64>,
}

impl CellReport {
    /// Builds a cell from per-seed results.
    pub fn from_results(dataset: &str, results: &[RunResult]) -> Self {
        Self {
            dataset: dataset.to_string(),
            system: results.first().map(|r| r.system.clone()).unwrap_or_default(),
            kappa: results.iter().map(|r| r.kappa).collect(),
            accuracy: results.iter().map(|r| r.accuracy).collect(),
            c_f1: results.iter().map(|r| r.c_f1).collect(),
            runtime_s: results.iter().map(|r| r.runtime_s).collect(),
            discrimination: results.iter().filter_map(|r| r.discrimination).collect(),
        }
    }

    /// `(mean, std)` of the kappa values.
    pub fn kappa_summary(&self) -> (f64, f64) {
        mean_std(&self.kappa)
    }

    /// `(mean, std)` of the C-F1 values.
    pub fn c_f1_summary(&self) -> (f64, f64) {
        mean_std(&self.c_f1)
    }
}

/// A full experiment report (one table's worth of cells).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentReport {
    /// Experiment identifier, e.g. `"table4"`.
    pub experiment: String,
    /// Seeds used.
    pub seeds: u64,
    /// All cells.
    pub cells: Vec<CellReport>,
}

impl ExperimentReport {
    /// New empty report.
    pub fn new(experiment: &str, seeds: u64) -> Self {
        Self { experiment: experiment.to_string(), seeds, cells: Vec::new() }
    }

    /// Adds one aggregated cell.
    pub fn push(&mut self, cell: CellReport) {
        self.cells.push(cell);
    }

    /// Serialises to a JSON string (hand-rolled: the workspace deliberately
    /// avoids a JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"experiment\":\"{}\",\"seeds\":{},\"cells\":[",
            self.experiment, self.seeds
        ));
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let vec_json = |v: &[f64]| {
                let items: Vec<String> = v.iter().map(|x| format!("{x:.6}")).collect();
                format!("[{}]", items.join(","))
            };
            out.push_str(&format!(
                "{{\"dataset\":\"{}\",\"system\":\"{}\",\"kappa\":{},\"accuracy\":{},\"c_f1\":{},\"runtime_s\":{},\"discrimination\":{}}}",
                c.dataset,
                c.system,
                vec_json(&c.kappa),
                vec_json(&c.accuracy),
                vec_json(&c.c_f1),
                vec_json(&c.runtime_s),
                vec_json(&c.discrimination),
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(kappa: f64) -> RunResult {
        RunResult {
            system: "sys".into(),
            kappa,
            accuracy: 0.9,
            c_f1: 0.8,
            discrimination: Some(3.0),
            runtime_s: 1.5,
            n_observations: 100,
            n_models: 2,
            seed: 0,
            observability: None,
        }
    }

    #[test]
    fn cell_aggregates_seeds() {
        let cell = CellReport::from_results("DS", &[result(0.5), result(0.7)]);
        assert_eq!(cell.kappa, vec![0.5, 0.7]);
        let (m, s) = cell.kappa_summary();
        assert!((m - 0.6).abs() < 1e-12);
        assert!((s - 0.1).abs() < 1e-12);
        assert_eq!(cell.discrimination.len(), 2);
    }

    #[test]
    fn report_serialises_to_json() {
        let mut report = ExperimentReport::new("table4", 2);
        report.push(CellReport::from_results("DS", &[result(0.5)]));
        let json = report.to_json();
        assert!(json.starts_with("{\"experiment\":\"table4\""));
        assert!(json.contains("\"dataset\":\"DS\""));
        assert!(json.contains("\"kappa\":[0.500000]"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_report_is_valid() {
        let report = ExperimentReport::new("t", 0);
        assert_eq!(report.to_json(), "{\"experiment\":\"t\",\"seeds\":0,\"cells\":[]}");
    }
}
