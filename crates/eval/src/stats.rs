//! Aggregation and significance testing across datasets and seeds.
//!
//! The paper ranks methods per dataset, averages the ranks, runs a Friedman
//! test (methods achieve equal ranks?) and, on rejection, a Nemenyi post-hoc
//! test at alpha = 0.05.

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Ranks one row of scores (higher = better): best gets rank 1. Ties share
/// the average rank, matching standard Friedman methodology.
pub fn rank_row(scores: &[f64]) -> Vec<f64> {
    let k = scores.len();
    let mut idx: Vec<usize> = (0..k).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut ranks = vec![0.0; k];
    let mut i = 0;
    while i < k {
        let mut j = i;
        while j + 1 < k && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // positions i..=j tie: average rank
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &p in &idx[i..=j] {
            ranks[p] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Average rank of each method (column) over datasets (rows), higher scores
/// ranking better.
pub fn rank_rows(rows: &[Vec<f64>]) -> Vec<f64> {
    assert!(!rows.is_empty());
    let k = rows[0].len();
    let mut sums = vec![0.0; k];
    for row in rows {
        assert_eq!(row.len(), k);
        for (s, r) in sums.iter_mut().zip(rank_row(row)) {
            *s += r;
        }
    }
    sums.into_iter().map(|s| s / rows.len() as f64).collect()
}

/// Outcome of the Friedman test.
#[derive(Debug, Clone)]
pub struct FriedmanOutcome {
    /// Friedman chi-square statistic.
    pub chi_square: f64,
    /// Degrees of freedom (`k - 1`).
    pub dof: usize,
    /// Approximate p-value from the chi-square distribution.
    pub p_value: f64,
    /// Average rank per method.
    pub average_ranks: Vec<f64>,
}

/// Regularised lower incomplete gamma `P(s, x)` via series / continued
/// fraction (Numerical Recipes style) — enough for chi-square p-values.
fn gamma_p(s: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let ln_gamma_s = ln_gamma(s);
    if x < s + 1.0 {
        // Series expansion.
        let mut term = 1.0 / s;
        let mut sum = term;
        let mut a = s;
        for _ in 0..500 {
            a += 1.0;
            term *= x / a;
            sum += term;
            if term.abs() < sum.abs() * 1e-14 {
                break;
            }
        }
        sum * (-x + s * x.ln() - ln_gamma_s).exp()
    } else {
        // Continued fraction for Q, then P = 1 - Q.
        let mut b = x + 1.0 - s;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - s);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-14 {
                break;
            }
        }
        1.0 - h * (-x + s * x.ln() - ln_gamma_s).exp()
    }
}

/// Lanczos log-gamma.
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection.
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = G[0];
    let t = x + 7.5;
    for (i, &g) in G.iter().enumerate().skip(1) {
        a += g / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Chi-square survival function.
fn chi_square_sf(x: f64, dof: usize) -> f64 {
    (1.0 - gamma_p(dof as f64 / 2.0, x / 2.0)).clamp(0.0, 1.0)
}

/// Friedman test over `rows` (datasets) × `columns` (methods), higher score
/// = better.
pub fn friedman_test(rows: &[Vec<f64>]) -> FriedmanOutcome {
    let n = rows.len() as f64;
    let average_ranks = rank_rows(rows);
    let k = average_ranks.len() as f64;
    let sum_r2: f64 = average_ranks.iter().map(|r| r * r).sum();
    let chi_square = 12.0 * n / (k * (k + 1.0)) * (sum_r2 - k * (k + 1.0) * (k + 1.0) / 4.0);
    let dof = average_ranks.len() - 1;
    FriedmanOutcome {
        chi_square,
        dof,
        p_value: chi_square_sf(chi_square, dof),
        average_ranks,
    }
}

/// Nemenyi critical difference at alpha = 0.05: two methods differ
/// significantly when their average ranks differ by more than this.
/// `k` = number of methods (2..=10 supported), `n` = number of datasets.
pub fn nemenyi_critical_difference(k: usize, n: usize) -> f64 {
    // q_0.05 values (studentised range / sqrt(2)) from Demšar (2006).
    const Q05: [f64; 9] = [1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164];
    assert!((2..=10).contains(&k), "Nemenyi table covers 2..=10 methods");
    let q = Q05[k - 2];
    q * ((k * (k + 1)) as f64 / (6.0 * n as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn ranking_higher_is_better() {
        assert_eq!(rank_row(&[0.9, 0.5, 0.7]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn tied_scores_share_average_rank() {
        assert_eq!(rank_row(&[0.5, 0.5, 0.1]), vec![1.5, 1.5, 3.0]);
        assert_eq!(rank_row(&[0.3, 0.3, 0.3]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn average_ranks_across_datasets() {
        let rows = vec![vec![0.9, 0.1], vec![0.8, 0.2], vec![0.1, 0.9]];
        assert_eq!(rank_rows(&rows), vec![(1.0 + 1.0 + 2.0) / 3.0, (2.0 + 2.0 + 1.0) / 3.0]);
    }

    #[test]
    fn friedman_detects_consistent_dominance() {
        // Method 0 always best, method 2 always worst, across 12 datasets.
        let rows: Vec<Vec<f64>> =
            (0..12).map(|i| vec![0.9 + 0.001 * i as f64, 0.5, 0.1]).collect();
        let out = friedman_test(&rows);
        assert!(out.p_value < 0.01, "p {}", out.p_value);
        assert_eq!(out.average_ranks, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn friedman_accepts_random_ranks() {
        // Rotating winners: no consistent ranking.
        let rows = vec![
            vec![0.9, 0.5, 0.1],
            vec![0.1, 0.9, 0.5],
            vec![0.5, 0.1, 0.9],
            vec![0.9, 0.5, 0.1],
            vec![0.1, 0.9, 0.5],
            vec![0.5, 0.1, 0.9],
        ];
        let out = friedman_test(&rows);
        assert!(out.p_value > 0.5, "p {}", out.p_value);
    }

    #[test]
    fn chi_square_sf_sanity() {
        // chi2(1): P(X > 3.841) ~ 0.05.
        assert!((chi_square_sf(3.841, 1) - 0.05).abs() < 0.002);
        // chi2(3): P(X > 7.815) ~ 0.05.
        assert!((chi_square_sf(7.815, 3) - 0.05).abs() < 0.002);
    }

    #[test]
    fn nemenyi_matches_published_value() {
        // Demšar (2006): k=4, N=14 -> CD ~ 1.25... (q=2.569).
        let cd = nemenyi_critical_difference(4, 14);
        assert!((cd - 2.569 * (20.0_f64 / 84.0).sqrt()).abs() < 1e-9);
        assert!(cd > 0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..10u64 {
            let fact: f64 = (1..n).map(|i| i as f64).product();
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-9, "n={n}");
        }
    }
}
