//! Prequential evaluation runner.

use std::time::Instant;

use ficsum_obs::{shared, InMemoryRecorder, Recorder};
use ficsum_stream::{Observation, StreamSource};

use crate::cf1::CoOccurrenceF1;
use crate::kappa::KappaEvaluator;
use crate::observability::ObsSummary;

/// A stream-classification system under evaluation.
///
/// Implemented by FiCSUM (all variants) and every baseline framework in
/// `ficsum-baselines`. The `model` identity returned by
/// [`EvaluatedSystem::step`] is whatever the system considers its active
/// model — for single-classifier frameworks the classifier generation, for
/// FiCSUM the active concept id, for ensembles a constant (they have one
/// evolving model, which is exactly why their C-F1 is poor in Table VI).
pub trait EvaluatedSystem {
    /// Processes one observation prequentially, returning the prediction
    /// made *before* training and the identity of the active model.
    fn step(&mut self, x: &[f64], y: usize) -> (usize, usize);

    /// Optional discrimination-ability probe, sampled periodically by the
    /// runner (Section II-A of the paper; see `Ficsum::discrimination_probe`
    /// for the exact quantity).
    fn discrimination(&mut self) -> Option<f64> {
        None
    }

    /// Attaches an observability recorder, returning `true` if the system
    /// supports one. The default declines (and drops the recorder), so
    /// systems without observability need no code.
    fn attach_recorder(&mut self, recorder: Box<dyn Recorder>) -> bool {
        drop(recorder);
        false
    }

    /// The currently attached recorder, if the system exposes one.
    fn recorder(&self) -> Option<&dyn Recorder> {
        None
    }

    /// Display name.
    fn name(&self) -> String;
}

impl EvaluatedSystem for Box<dyn EvaluatedSystem> {
    fn step(&mut self, x: &[f64], y: usize) -> (usize, usize) {
        (**self).step(x, y)
    }

    fn discrimination(&mut self) -> Option<f64> {
        (**self).discrimination()
    }

    fn attach_recorder(&mut self, recorder: Box<dyn Recorder>) -> bool {
        (**self).attach_recorder(recorder)
    }

    fn recorder(&self) -> Option<&dyn Recorder> {
        (**self).recorder()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// Everything measured in one prequential run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System display name.
    pub system: String,
    /// Prequential kappa statistic.
    pub kappa: f64,
    /// Prequential accuracy.
    pub accuracy: f64,
    /// Co-occurrence F1.
    pub c_f1: f64,
    /// Mean sampled discrimination ability (`None` if the system has none).
    pub discrimination: Option<f64>,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// Observations processed.
    pub n_observations: u64,
    /// Distinct models the system exposed.
    pub n_models: usize,
    /// Seed the run was configured with (for report reproducibility).
    pub seed: u64,
    /// Recorder-derived summary, when the run was observed
    /// (see [`RunOptions::observability`]).
    pub observability: Option<ObsSummary>,
}

/// How often the runner samples the discrimination probe.
const DISCRIMINATION_EVERY: u64 = 250;

/// Configuration for one evaluation run (see [`evaluate_with`]).
///
/// Not `Clone` because the recorder factory is an arbitrary closure; build
/// one per run (they are cheap).
pub struct RunOptions {
    /// Number of classes in the stream.
    pub n_classes: usize,
    /// Seed associated with the run. The runner itself is deterministic;
    /// the seed is carried into [`RunResult::seed`] so multi-seed reports
    /// stay attributable, and callers use the same value to seed their
    /// stream/system construction.
    pub seed: u64,
    /// Observations at the start of the stream exempt from detection
    /// accounting (systems are still warming up).
    pub grace: u64,
    /// A drift fired within this many observations after a ground-truth
    /// concept change counts as detecting it; anything later (or matching
    /// no change) is a false alarm.
    pub detection_window: u64,
    /// When `true`, the runner attaches its own [`InMemoryRecorder`] to
    /// the system and reduces it into [`RunResult::observability`] after
    /// the run. Takes precedence over [`RunOptions::recorder_factory`].
    pub observability: bool,
    /// Factory for a custom recorder to attach instead (e.g. a
    /// `JsonlSink`); the runner cannot read such recorders back, so
    /// [`RunResult::observability`] stays `None`.
    #[allow(clippy::type_complexity)]
    pub recorder_factory: Option<Box<dyn Fn() -> Box<dyn Recorder>>>,
}

impl RunOptions {
    /// Defaults for a stream with `n_classes` labels: seed 0, a grace
    /// period of 500 observations, a 1000-observation detection window, no
    /// recorder.
    pub fn new(n_classes: usize) -> Self {
        Self {
            n_classes,
            seed: 0,
            grace: 500,
            detection_window: 1000,
            observability: false,
            recorder_factory: None,
        }
    }

    /// Enables the runner-owned in-memory recorder.
    pub fn observed(mut self) -> Self {
        self.observability = true;
        self
    }

    /// Sets the seed carried into the result.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Drives `system` over `stream` prequentially and collects all metrics.
///
/// With [`RunOptions::observability`] set, the detection-delay and
/// per-stage-cost figures in [`RunResult::observability`] are derived
/// solely from the recorder's event stream — the runner never reaches into
/// the system beyond [`EvaluatedSystem`].
pub fn evaluate_with<S: EvaluatedSystem>(
    system: &mut S,
    stream: &mut dyn StreamSource,
    opts: &RunOptions,
) -> RunResult {
    let mut kappa = KappaEvaluator::new(opts.n_classes.max(2));
    let mut cf1 = CoOccurrenceF1::new();
    let mut disc_sum = 0.0;
    let mut disc_n = 0u64;
    let mut t = 0u64;

    let keep = if opts.observability {
        let keep = shared(InMemoryRecorder::new());
        system.attach_recorder(Box::new(keep.clone())).then_some(keep)
    } else {
        if let Some(factory) = &opts.recorder_factory {
            system.attach_recorder(factory());
        }
        None
    };
    let mut truth_changes: Vec<u64> = Vec::new();
    let mut last_concept: Option<usize> = None;

    let start = Instant::now();
    while let Some(Observation { features, label, concept }) = stream.next_observation() {
        let (prediction, model) = system.step(&features, label);
        kappa.record(label, prediction);
        cf1.record(concept, model);
        t += 1;
        if last_concept.is_some_and(|prev| prev != concept) {
            truth_changes.push(t);
        }
        last_concept = Some(concept);
        if t.is_multiple_of(DISCRIMINATION_EVERY) {
            if let Some(d) = system.discrimination() {
                if d.is_finite() {
                    disc_sum += d;
                    disc_n += 1;
                }
            }
        }
    }
    let runtime_s = start.elapsed().as_secs_f64();

    let observability = keep.map(|keep| {
        ObsSummary::from_recorder(
            &keep.borrow(),
            &truth_changes,
            opts.grace,
            opts.detection_window,
        )
    });

    RunResult {
        system: system.name(),
        kappa: kappa.kappa(),
        accuracy: kappa.accuracy(),
        c_f1: cf1.c_f1(),
        discrimination: (disc_n > 0).then(|| disc_sum / disc_n as f64),
        runtime_s,
        n_observations: t,
        n_models: cf1.n_models(),
        seed: opts.seed,
        observability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::VecStream;

    /// Oracle: predicts the label, reports the concept as its model.
    struct Oracle;
    impl EvaluatedSystem for Oracle {
        fn step(&mut self, _x: &[f64], y: usize) -> (usize, usize) {
            (y, y)
        }
        fn name(&self) -> String {
            "oracle".into()
        }
    }

    /// Constant: predicts 0 from model 0, discriminates nothing.
    struct Constant;
    impl EvaluatedSystem for Constant {
        fn step(&mut self, _x: &[f64], _y: usize) -> (usize, usize) {
            (0, 0)
        }
        fn discrimination(&mut self) -> Option<f64> {
            Some(1.5)
        }
        fn name(&self) -> String {
            "constant".into()
        }
    }

    /// Records a `DriftDetected` exactly 10 observations after each
    /// concept change it is told about (via its own concept input).
    struct Announcer {
        recorder: Option<Box<dyn Recorder>>,
        t: u64,
        pending: Option<u64>,
        last_y: Option<usize>,
    }
    impl EvaluatedSystem for Announcer {
        fn step(&mut self, _x: &[f64], y: usize) -> (usize, usize) {
            self.t += 1;
            if self.last_y.is_some_and(|prev| prev != y) {
                self.pending = Some(self.t + 10);
            }
            self.last_y = Some(y);
            if self.pending.is_some_and(|due| due == self.t) {
                self.pending = None;
                if let Some(r) = &mut self.recorder {
                    r.event(
                        self.t,
                        ficsum_obs::StreamEvent::DriftDetected {
                            trigger: ficsum_obs::DriftTrigger::Detector,
                        },
                    );
                }
            }
            (y, y)
        }
        fn attach_recorder(&mut self, recorder: Box<dyn Recorder>) -> bool {
            self.recorder = Some(recorder);
            true
        }
        fn recorder(&self) -> Option<&dyn Recorder> {
            self.recorder.as_deref()
        }
        fn name(&self) -> String {
            "announcer".into()
        }
    }

    fn stream() -> VecStream {
        let data = (0..1000)
            .map(|i| Observation::with_concept(vec![i as f64], i % 2, i / 500))
            .collect();
        VecStream::new(data)
    }

    #[test]
    fn oracle_scores_perfectly() {
        let mut s = stream();
        let r = evaluate_with(&mut Oracle, &mut s, &RunOptions::new(2));
        assert!((r.kappa - 1.0).abs() < 1e-12);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.n_observations, 1000);
        assert!(r.discrimination.is_none());
        assert!(r.observability.is_none(), "not requested");
    }

    #[test]
    fn constant_scores_zero_kappa() {
        let mut s = stream();
        let r = evaluate_with(&mut Constant, &mut s, &RunOptions::new(2));
        assert!(r.kappa.abs() < 1e-9);
        assert!((r.accuracy - 0.5).abs() < 1e-9);
        assert_eq!(r.discrimination, Some(1.5));
        assert_eq!(r.n_models, 1);
    }

    #[test]
    fn observed_run_derives_detection_delay_from_events() {
        // One concept change at t=3001 (stream index 3000 is the first of
        // concept 1); the announcer fires 10 observations later.
        let data = (0..6000)
            .map(|i| Observation::with_concept(vec![i as f64], (i / 3000) % 2, i / 3000))
            .collect();
        let mut s = VecStream::new(data);
        let mut sys = Announcer { recorder: None, t: 0, pending: None, last_y: None };
        let opts = RunOptions { grace: 0, ..RunOptions::new(2) }.observed().seed(7);
        let r = evaluate_with(&mut sys, &mut s, &opts);
        assert_eq!(r.seed, 7);
        let obs = r.observability.expect("observability requested and supported");
        assert_eq!(obs.n_truth_changes, 1);
        assert_eq!(obs.detected, 1);
        assert_eq!(obs.false_alarms, 0);
        assert_eq!(obs.mean_detection_delay, Some(10.0));
    }

    #[test]
    fn systems_without_recorder_support_yield_no_summary() {
        let mut s = stream();
        let r = evaluate_with(&mut Oracle, &mut s, &RunOptions::new(2).observed());
        assert!(r.observability.is_none());
    }
}
