//! Prequential evaluation runner.

use std::time::Instant;

use ficsum_stream::{Observation, StreamSource};

use crate::cf1::CoOccurrenceF1;
use crate::kappa::KappaEvaluator;

/// A stream-classification system under evaluation.
///
/// Implemented by FiCSUM (all variants) and every baseline framework in
/// `ficsum-baselines`. The `model` identity returned by
/// [`EvaluatedSystem::step`] is whatever the system considers its active
/// model — for single-classifier frameworks the classifier generation, for
/// FiCSUM the active concept id, for ensembles a constant (they have one
/// evolving model, which is exactly why their C-F1 is poor in Table VI).
pub trait EvaluatedSystem {
    /// Processes one observation prequentially, returning the prediction
    /// made *before* training and the identity of the active model.
    fn step(&mut self, x: &[f64], y: usize) -> (usize, usize);

    /// Optional discrimination-ability probe, sampled periodically by the
    /// runner (Section II-A of the paper; see `Ficsum::discrimination_probe`
    /// for the exact quantity).
    fn discrimination(&mut self) -> Option<f64> {
        None
    }

    /// Display name.
    fn name(&self) -> String;
}

impl EvaluatedSystem for Box<dyn EvaluatedSystem> {
    fn step(&mut self, x: &[f64], y: usize) -> (usize, usize) {
        (**self).step(x, y)
    }

    fn discrimination(&mut self) -> Option<f64> {
        (**self).discrimination()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// Everything measured in one prequential run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System display name.
    pub system: String,
    /// Prequential kappa statistic.
    pub kappa: f64,
    /// Prequential accuracy.
    pub accuracy: f64,
    /// Co-occurrence F1.
    pub c_f1: f64,
    /// Mean sampled discrimination ability (`None` if the system has none).
    pub discrimination: Option<f64>,
    /// Wall-clock runtime in seconds.
    pub runtime_s: f64,
    /// Observations processed.
    pub n_observations: u64,
    /// Distinct models the system exposed.
    pub n_models: usize,
}

/// How often the runner samples the discrimination probe.
const DISCRIMINATION_EVERY: u64 = 250;

/// Drives `system` over `stream` prequentially and collects all metrics.
pub fn evaluate<S: EvaluatedSystem>(
    system: &mut S,
    stream: &mut dyn StreamSource,
    n_classes: usize,
) -> RunResult {
    let mut kappa = KappaEvaluator::new(n_classes.max(2));
    let mut cf1 = CoOccurrenceF1::new();
    let mut disc_sum = 0.0;
    let mut disc_n = 0u64;
    let mut t = 0u64;
    let start = Instant::now();
    while let Some(Observation { features, label, concept }) = stream.next_observation() {
        let (prediction, model) = system.step(&features, label);
        kappa.record(label, prediction);
        cf1.record(concept, model);
        t += 1;
        if t % DISCRIMINATION_EVERY == 0 {
            if let Some(d) = system.discrimination() {
                if d.is_finite() {
                    disc_sum += d;
                    disc_n += 1;
                }
            }
        }
    }
    RunResult {
        system: system.name(),
        kappa: kappa.kappa(),
        accuracy: kappa.accuracy(),
        c_f1: cf1.c_f1(),
        discrimination: (disc_n > 0).then(|| disc_sum / disc_n as f64),
        runtime_s: start.elapsed().as_secs_f64(),
        n_observations: t,
        n_models: cf1.n_models(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ficsum_stream::VecStream;

    /// Oracle: predicts the label, reports the concept as its model.
    struct Oracle;
    impl EvaluatedSystem for Oracle {
        fn step(&mut self, _x: &[f64], y: usize) -> (usize, usize) {
            (y, y)
        }
        fn name(&self) -> String {
            "oracle".into()
        }
    }

    /// Constant: predicts 0 from model 0, discriminates nothing.
    struct Constant;
    impl EvaluatedSystem for Constant {
        fn step(&mut self, _x: &[f64], _y: usize) -> (usize, usize) {
            (0, 0)
        }
        fn discrimination(&mut self) -> Option<f64> {
            Some(1.5)
        }
        fn name(&self) -> String {
            "constant".into()
        }
    }

    fn stream() -> VecStream {
        let data = (0..1000)
            .map(|i| Observation::with_concept(vec![i as f64], i % 2, i / 500))
            .collect();
        VecStream::new(data)
    }

    #[test]
    fn oracle_scores_perfectly() {
        let mut s = stream();
        let r = evaluate(&mut Oracle, &mut s, 2);
        assert!((r.kappa - 1.0).abs() < 1e-12);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.n_observations, 1000);
        assert!(r.discrimination.is_none());
    }

    #[test]
    fn constant_scores_zero_kappa() {
        let mut s = stream();
        let r = evaluate(&mut Constant, &mut s, 2);
        assert!(r.kappa.abs() < 1e-9);
        assert!((r.accuracy - 0.5).abs() < 1e-9);
        assert_eq!(r.discrimination, Some(1.5));
        assert_eq!(r.n_models, 1);
    }
}
