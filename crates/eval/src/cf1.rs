//! Co-occurrence F1 (C-F1): how well system model identities track
//! ground-truth concepts (Section II of the paper).
//!
//! Every observation pairs the ground-truth concept `c_t` with the model
//! `m_t` that classified it. For each concept `C`, the model `M` maximising
//! the F1 of "predicting C by M being active" is found; C-F1 is the mean of
//! those maxima over concepts.

use std::collections::HashMap;

/// Accumulates `(concept, model)` co-occurrence counts.
#[derive(Debug, Clone, Default)]
pub struct CoOccurrenceF1 {
    /// joint[(concept, model)] — time steps where both held.
    joint: HashMap<(usize, usize), u64>,
    concept_totals: HashMap<usize, u64>,
    model_totals: HashMap<usize, u64>,
}

impl CoOccurrenceF1 {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one time step.
    pub fn record(&mut self, concept: usize, model: usize) {
        *self.joint.entry((concept, model)).or_insert(0) += 1;
        *self.concept_totals.entry(concept).or_insert(0) += 1;
        *self.model_totals.entry(model).or_insert(0) += 1;
    }

    /// F1 of tracking `concept` with `model`.
    pub fn f1(&self, concept: usize, model: usize) -> f64 {
        let joint = *self.joint.get(&(concept, model)).unwrap_or(&0) as f64;
        if joint == 0.0 {
            return 0.0;
        }
        let precision = joint / *self.model_totals.get(&model).unwrap_or(&1) as f64;
        let recall = joint / *self.concept_totals.get(&concept).unwrap_or(&1) as f64;
        2.0 * precision * recall / (precision + recall)
    }

    /// `max_M F1_{CM}` for one concept.
    pub fn best_f1(&self, concept: usize) -> f64 {
        self.model_totals
            .keys()
            .map(|&m| self.f1(concept, m))
            .fold(0.0, f64::max)
    }

    /// The C-F1 score: mean best-F1 over all observed concepts.
    pub fn c_f1(&self) -> f64 {
        if self.concept_totals.is_empty() {
            return 0.0;
        }
        let total: f64 = self.concept_totals.keys().map(|&c| self.best_f1(c)).sum();
        total / self.concept_totals.len() as f64
    }

    /// Number of distinct models observed.
    pub fn n_models(&self) -> usize {
        self.model_totals.len()
    }

    /// Number of distinct concepts observed.
    pub fn n_concepts(&self) -> usize {
        self.concept_totals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_tracking_scores_one() {
        let mut c = CoOccurrenceF1::new();
        for t in 0..300 {
            let concept = t / 100; // three concepts in sequence
            c.record(concept, concept + 10); // distinct model per concept
        }
        assert!((c.c_f1() - 1.0).abs() < 1e-12);
        assert_eq!(c.n_concepts(), 3);
        assert_eq!(c.n_models(), 3);
    }

    #[test]
    fn single_model_for_everything_scores_low() {
        let mut c = CoOccurrenceF1::new();
        for t in 0..400 {
            c.record(t / 100, 0); // four concepts, one model
        }
        // Per concept: precision 0.25, recall 1 -> F1 = 0.4.
        assert!((c.c_f1() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn fragmented_models_score_by_largest_fragment() {
        let mut c = CoOccurrenceF1::new();
        // One concept, split across two models 75/25.
        for t in 0..100 {
            c.record(0, if t < 75 { 1 } else { 2 });
        }
        // Best model is 1: precision 1.0, recall 0.75 -> F1 ~ 0.857.
        assert!((c.c_f1() - 2.0 * 0.75 / 1.75).abs() < 1e-9);
    }

    #[test]
    fn model_shared_across_concepts_hurts_precision() {
        let mut c = CoOccurrenceF1::new();
        // Model 5 active during concepts 0 and 1 equally.
        for t in 0..200 {
            c.record(t / 100, 5);
        }
        // precision 0.5, recall 1.0 -> F1 = 2/3 for each concept.
        assert!((c.c_f1() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_scores_zero() {
        assert_eq!(CoOccurrenceF1::new().c_f1(), 0.0);
    }

    #[test]
    fn recurrence_with_reuse_beats_recurrence_without() {
        let mut reuse = CoOccurrenceF1::new();
        let mut fresh = CoOccurrenceF1::new();
        // Concept 0 occurs twice; the reusing system brings back model 0,
        // the naive system makes a new model per segment.
        for t in 0..300 {
            let concept = if !(100..200).contains(&t) { 0 } else { 1 };
            let model_reuse = concept;
            let model_fresh = t / 100; // 0, 1, 2
            reuse.record(concept, model_reuse);
            fresh.record(concept, model_fresh);
        }
        assert!(reuse.c_f1() > fresh.c_f1());
        assert!((reuse.c_f1() - 1.0).abs() < 1e-12);
    }
}
