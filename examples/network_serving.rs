//! Serving FiCSUM over TCP: a wire-protocol front-end on a sharded
//! server, three clients streaming their own sessions, backpressure and
//! shutdown crossing the wire as typed answers.
//!
//! The front-end adds transport, never drift: every session served here
//! produces outcomes bit-identical to a standalone pipeline stamped from
//! the same template (the run verifies one session against its local
//! reference at the end). Backpressure works the same way it does
//! in-process — a refused batch enqueued nothing and is retried verbatim,
//! here by `submit_with_retry` under bounded exponential backoff.
//!
//! ```sh
//! cargo run --release --example network_serving
//! ```

use std::sync::Arc;

use ficsum::prelude::*;

const SESSIONS: u64 = 12;
const CLIENTS: usize = 3;
const STEPS: usize = 500;

fn main() {
    // One validated template stamps every session, local or remote.
    let template = SessionTemplate::new(3, 2, FicsumConfig::default(), Variant::Full)
        .expect("default config is valid");

    // The serving core: 4 shard workers, bounded queues. The Arc lets the
    // TCP front-end and direct in-process callers share it.
    let core = Arc::new(StreamServer::new(
        template.clone(),
        ServeConfig::default().with_shards(4).with_queue_capacity(256),
    ));

    // The front-end: bind a loopback port, bridge frames onto the core.
    let server = NetServer::bind("127.0.0.1:0", core).expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // A deterministic tape per session so the parity check below can
    // replay session 0 locally.
    let tapes: Vec<Vec<(Vec<f64>, usize)>> = (0..SESSIONS)
        .map(|s| {
            let mut stream = ficsum::synth::dataset_by_name("STAGGER", 7 + s).unwrap();
            (0..STEPS)
                .map(|_| {
                    let o = stream.next_observation().expect("synthetic streams are infinite");
                    (o.features.clone(), o.label)
                })
                .collect()
        })
        .collect();

    // Three clients, each owning a third of the sessions, each on its own
    // connection. `connect_expecting` pins the schema: a client built for
    // the wrong stream fails at handshake, not on its first batch.
    let outcomes: Vec<Vec<(u64, Vec<RemoteOutcome>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let tapes = &tapes;
                scope.spawn(move || {
                    let mut client =
                        NetClient::connect_expecting(addr, 3, 2).expect("schema matches");
                    let mine: Vec<u64> =
                        (0..SESSIONS).filter(|s| *s as usize % CLIENTS == c).collect();
                    let mut results: Vec<(u64, Vec<RemoteOutcome>)> =
                        mine.iter().map(|&s| (s, Vec::new())).collect();
                    let policy = RetryPolicy::default();
                    let mut cursors: Vec<_> =
                        mine.iter().map(|&s| tapes[s as usize].iter()).collect();
                    for _ in 0..STEPS {
                        // One observation per owned session per batch;
                        // refusals under load are retried verbatim.
                        let wave: Vec<Submit> = mine
                            .iter()
                            .zip(cursors.iter_mut())
                            .map(|(&s, tape)| {
                                let (features, label) =
                                    tape.next().expect("tapes hold STEPS entries");
                                Submit::new(SessionId(s), features.clone(), *label)
                            })
                            .collect();
                        let replies =
                            client.submit_with_retry(&wave, policy).expect("retry succeeds");
                        for (slot, reply) in replies.into_iter().enumerate() {
                            results[slot].1.push(reply.expect("no faults in this run"));
                        }
                    }
                    client.shutdown().expect("orderly goodbye");
                    results
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Parity spot-check: replay session 0's tape through a local pipeline
    // and compare against what came back over the wire.
    let served_session0: &Vec<RemoteOutcome> = outcomes
        .iter()
        .flatten()
        .find(|(s, _)| *s == 0)
        .map(|(_, outcomes)| outcomes)
        .expect("session 0 was served");
    let mut reference = template.instantiate();
    let mut drifts = 0usize;
    for (step, (features, label)) in tapes[0].iter().enumerate() {
        let local = reference.process(features, *label);
        let remote = served_session0[step];
        assert_eq!(local.prediction, remote.prediction, "diverged at step {step}");
        assert_eq!(local.active_concept as u64, remote.active_concept);
        drifts += local.drift as usize;
    }
    println!(
        "session 0: {} steps over TCP, bit-identical to the local reference ({} drifts)",
        STEPS, drifts
    );

    // Shut down: clients already said goodbye; the report combines the
    // core's snapshots with the transport metrics.
    let report = server.shutdown();
    let net = &report.net;
    println!(
        "front-end: {} connections, {} batches accepted, {} rejected, \
         batch latency p50 {} us / p99 {} us",
        net.connections_opened,
        net.batches_accepted,
        net.batches_rejected,
        net.latency.quantile_nanos(0.50) / 1_000,
        net.latency.quantile_nanos(0.99) / 1_000,
    );
    println!(
        "core: {} sessions snapshotted at shutdown across {} shards",
        report.serve.snapshots.len(),
        report.serve.metrics.len()
    );
}
