//! Quickstart: run FiCSUM over a recurring-concept stream and watch it
//! detect drifts and reuse stored concepts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ficsum::prelude::*;

fn main() {
    // STAGGER: three boolean concepts, each recurring nine times.
    let mut stream = ficsum::synth::stagger_stream(42);
    println!(
        "stream: {} observations, {} features, {} classes",
        stream.len(),
        stream.dims(),
        stream.n_classes()
    );

    // Keep a handle on the recorder: every drift, concept switch and
    // stage timing the pipeline emits lands in this shared sink.
    let recorder = shared(InMemoryRecorder::new());
    let mut system = FicsumBuilder::new(stream.dims(), stream.n_classes())
        .variant(Variant::Full)
        .recorder(Box::new(recorder.clone()))
        .build()
        .expect("valid FiCSUM configuration");

    let mut correct = 0u64;
    let mut n = 0u64;
    while let Some(obs) = stream.next_observation() {
        let outcome = system.process(&obs.features, obs.label);
        if outcome.prediction == obs.label {
            correct += 1;
        }
        n += 1;
        if outcome.drift {
            println!(
                "t={n}: drift detected -> active concept {}",
                outcome.active_concept
            );
        }
    }

    let stats = system.stats();
    println!("\naccuracy          : {:.3}", correct as f64 / n as f64);
    println!("drifts detected   : {}", stats.n_drifts);
    println!("concepts reused   : {}", stats.n_reuses);
    println!("concepts created  : {}", stats.n_new_concepts);
    println!("stored concepts   : {}", system.repository().len());

    let rec = recorder.borrow();
    println!("recorded events   : {}", rec.events().len());
    let drifts = rec.drift_points();
    if let (Some(first), Some(last)) = (drifts.first(), drifts.last()) {
        println!("drift timestamps  : first t={first}, last t={last}");
    }
    for stage in Stage::ALL {
        if let Some(h) = rec.stage_histogram(stage) {
            println!(
                "stage {:<20}: {} spans, mean {:.1} us",
                stage.name(),
                h.count(),
                h.mean_nanos() / 1e3
            );
        }
    }
}
