//! Concept tracking: compare how well different systems *identify* the
//! ground-truth concepts of a recurring stream (the paper's C-F1 measure),
//! independent of raw accuracy. An ensemble can classify well while being
//! unable to say "this is the Tuesday-rush concept again" — which is
//! exactly what Table VI shows.
//!
//! ```sh
//! cargo run --release --example concept_tracking
//! ```

use ficsum::prelude::*;

fn main() {
    let spec = ALL_DATASETS.iter().find(|s| s.name == "RTREE-U").unwrap();
    println!(
        "RTREE-U: {} concepts x 9 occurrences, drift purely in p(X)\n",
        spec.n_contexts
    );

    let systems: Vec<(&str, Box<dyn EvaluatedSystem>)> = vec![
        ("HTCD", Box::new(Htcd::new(spec.n_features, spec.n_classes))),
        ("ARF", Box::new(EnsembleSystem::arf(spec.n_features, spec.n_classes))),
        (
            "FiCSUM",
            Box::new(FicsumSystem::new(spec.n_features, spec.n_classes, Variant::Full)),
        ),
    ];

    println!(
        "{:<8} {:>7} {:>7} {:>8} {:>7} {:>9}",
        "system", "kappa", "C-F1", "models", "drifts", "delay"
    );
    for (name, mut system) in systems {
        let stream = dataset_by_name(spec.name, 7).unwrap();
        // Cap for example runtime.
        let data: Vec<_> = stream.observations().iter().take(12_000).cloned().collect();
        let mut stream = VecStream::with_classes(data, spec.n_classes);
        // An observed run also yields event-derived drift accounting —
        // for systems without recorder support the column stays empty.
        let r = evaluate_with(&mut system, &mut stream, &RunOptions::new(spec.n_classes).observed());
        let (drifts, delay) = match &r.observability {
            Some(obs) => (
                obs.n_drifts.to_string(),
                obs.mean_detection_delay.map_or("-".into(), |d| format!("{d:.0}")),
            ),
            None => ("-".into(), "-".into()),
        };
        println!(
            "{:<8} {:>7.3} {:>7.3} {:>8} {:>7} {:>9}",
            name, r.kappa, r.c_f1, r.n_models, drifts, delay
        );
    }

    println!("\nARF may win kappa, but with a single evolving model its C-F1 is");
    println!("pinned at 2/(1+k): it cannot tell concepts apart. The fingerprint");
    println!("repository is what turns drift adaptation into concept *tracking*.");
}
