//! Compare the four drift detectors on an abrupt error-rate shift.
//!
//! ```sh
//! cargo run --release --example drift_detectors
//! ```

use ficsum::prelude::*;

fn detect(detector: &mut dyn DriftDetector, name: &str) {
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    // 2000 observations at 10% error, then a jump to 45%.
    let mut detected_at = None;
    for i in 0..4000 {
        let p = if i < 2000 { 0.10 } else { 0.45 };
        let err = if rng.random::<f64>() < p { 1.0 } else { 0.0 };
        if detector.add(err) == DetectorState::Drift && i >= 2000 {
            detected_at = Some(i);
            break;
        }
    }
    match detected_at {
        Some(i) => println!("{name:<8} detected the shift after {} observations", i - 2000),
        None => println!("{name:<8} missed the shift"),
    }
}

fn main() {
    println!("error rate jumps 0.10 -> 0.45 at t=2000\n");
    detect(&mut Adwin::new(0.002), "ADWIN");
    detect(&mut Ddm::default(), "DDM");
    detect(&mut Eddm::default(), "EDDM");
    detect(&mut HddmA::default(), "HDDM-A");
    detect(&mut PageHinkley::default(), "PH");
}
