//! Domain scenario: a sensor network whose feature distribution shifts with
//! the season (unsupervised drift). The labelling function never changes —
//! what changes is *how the world looks* — so a purely supervised detector
//! is blind to it, while FiCSUM's unsupervised meta-features pick it up.
//!
//! ```sh
//! cargo run --release --example sensor_monitoring
//! ```

use ficsum::prelude::*;

fn main() {
    // One fixed "failure predictor" labelling function; four seasons that
    // only move the sensor distributions (mean shift + autocorrelation).
    let labeller = RandomTreeLabeller::with_pool(8, 4, 2, 4, 99);
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let seasons: Vec<Box<dyn ConceptGenerator>> = (0..4u64)
        .map(|season| {
            let channels: Vec<ChannelModulation> = (0..8)
                .map(|_| ChannelModulation {
                    shift: rng.random_range(-0.4..0.4),
                    ar_phi: rng.random_range(0.3..0.8),
                    ..ChannelModulation::identity()
                })
                .collect();
            let sampler = ModulatedSampler::new(UniformSampler::new(8, 10 + season), channels);
            Box::new(LabelledConcept::new(sampler, labeller.clone(), 0.05, 20 + season))
                as Box<dyn ConceptGenerator>
        })
        .collect();
    let mut stream = RecurringStreamBuilder::new(600, 3).with_recurrences(6).compose(seasons);

    // Compare a supervised-only system against the full fingerprint. An
    // observed run derives drift counts and per-stage costs from the
    // recorder's event stream.
    for variant in [Variant::ErrorRate, Variant::Full] {
        stream.reset();
        let mut system =
            FicsumSystem::with_config(8, 2, variant, FicsumConfig::default());
        let result = evaluate_with(&mut system, &mut stream, &RunOptions::new(2).observed());
        println!(
            "{:<8} kappa={:.3} C-F1={:.3} models={}",
            result.system, result.kappa, result.c_f1, result.n_models
        );
        if let Some(obs) = &result.observability {
            let micros = obs.total_stage_nanos() as f64 / 1e3;
            println!(
                "         drifts={} detected={}/{} false_alarms={} stage_time={micros:.0}us",
                obs.n_drifts, obs.detected, obs.n_truth_changes, obs.false_alarms
            );
        }
    }
    println!("\nThe full fingerprint tracks seasonal concepts that error-rate");
    println!("monitoring cannot distinguish (the classifier is never wrong more");
    println!("often — the *inputs* changed, not the labels).");
}
