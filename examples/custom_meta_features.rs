//! Build a FiCSUM variant with a custom meta-information configuration and
//! inspect the fingerprint schema and learned weights.
//!
//! ```sh
//! cargo run --release --example custom_meta_features
//! ```

use ficsum::prelude::*;

fn main() {
    // A compact fingerprint: moments + autocorrelation only, all sources.
    let extractor = FingerprintExtractor::new(
        3,
        vec![
            MetaFunction::Mean,
            MetaFunction::StdDev,
            MetaFunction::Acf1,
            MetaFunction::TurningPointRate,
        ],
        SourceSelection::all(),
        true, // + feature-importance channels
    );
    println!("fingerprint dimensions ({}):", extractor.schema().len());
    for dim in &extractor.schema().dims {
        print!("  {}", dim.name());
    }
    println!("\n");

    let factory = Box::new(move || {
        Box::new(HoeffdingTree::new(3, 2)) as Box<dyn Classifier>
    });
    let mut system = Ficsum::from_parts(3, 2, FicsumConfig::default(), extractor, factory)
        .expect("valid configuration");

    let mut stream = ficsum::synth::stagger_stream(3);
    for _ in 0..6000 {
        let Some(obs) = stream.next_observation() else { break };
        system.process(&obs.features, obs.label);
    }

    println!("stats after 6000 observations: {:?}", system.stats());
    let weights = &system.weights().values;
    let mut indexed: Vec<(usize, f64)> =
        weights.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nfive most influential meta-features right now:");
    for (i, w) in indexed.into_iter().take(5) {
        println!("  weight {:>7.2}  (dimension {i})", w);
    }
}
