//! Multi-stream serving: 64 independent FiCSUM sessions served over 4
//! shard workers, with deadline-bounded backpressure, a mid-run worker
//! crash, and per-shard metrics showing the recovery.
//!
//! Each session is one logical stream (think: one sensor or tenant). The
//! server hash-partitions sessions across shards, builds each pipeline
//! lazily from a shared validated template, and serves batched submits —
//! results per session are bit-identical to running that session's
//! pipeline standalone.
//!
//! Halfway through the run this example deliberately crashes one worker
//! thread (through a recorder that panics once — panics escaping the
//! per-request guard kill the worker). The supervisor restarts the worker
//! with its session table and backlog intact: no request is lost, no
//! session resets, and the final report shows `worker_restarts = 1` with
//! all 64 sessions accounted for.
//!
//! ```sh
//! cargo run --release --example multi_stream_serving
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ficsum::prelude::*;

const SESSIONS: u64 = 64;
const SHARDS: usize = 4;
const STEPS: usize = 600;

/// Forwards everything to a shared in-memory recorder, but panics exactly
/// once when the fuse is lit — simulating a bug in observability code
/// taking down a worker thread mid-run.
struct FusedRecorder {
    inner: Arc<Mutex<InMemoryRecorder>>,
    fuse: Arc<AtomicBool>,
}

impl Recorder for FusedRecorder {
    fn event(&mut self, t: u64, event: StreamEvent) {
        self.inner.lock().expect("recorder mutex").event(t, event);
    }
    fn counter(&mut self, name: &str, delta: u64) {
        if self.fuse.swap(false, Ordering::SeqCst) {
            panic!("injected recorder bug: crashing this worker");
        }
        self.inner.lock().expect("recorder mutex").counter(name, delta);
    }
    fn gauge(&mut self, name: &str, value: f64) {
        self.inner.lock().expect("recorder mutex").gauge(name, value);
    }
    fn enabled(&self) -> bool {
        true
    }
}

fn main() {
    // Validate the configuration once; every session is stamped from it.
    let template = SessionTemplate::new(3, 2, FicsumConfig::default(), Variant::Full)
        .expect("valid FiCSUM configuration");

    // One thread-safe recorder shared by all shards: counters, queue-depth
    // gauges and session lifecycle events aggregate here.
    let recorder = Arc::new(Mutex::new(InMemoryRecorder::new()));
    let fuse = Arc::new(AtomicBool::new(false));
    let factory: RecorderFactory = {
        let recorder = recorder.clone();
        let fuse = fuse.clone();
        Arc::new(move |_shard| {
            Box::new(FusedRecorder { inner: recorder.clone(), fuse: fuse.clone() })
                as Box<dyn Recorder>
        })
    };
    let server = StreamServer::with_options(
        template,
        ServeConfig::default().with_shards(SHARDS).with_queue_capacity(4096),
        ServeOptions::default().with_recorder_factory(factory),
    )
    .expect("no restore snapshots to validate");

    // Each session gets its own STAGGER stream (distinct seeds → distinct
    // drift points), interleaved one observation per session per wave.
    let mut streams: Vec<_> = (0..SESSIONS)
        .map(|s| ficsum::synth::dataset_by_name("STAGGER", s).expect("STAGGER exists"))
        .collect();
    let mut pending = Vec::new();
    let mut served = 0usize;
    let mut faulted = 0usize;
    for step in 0..STEPS {
        if step == STEPS / 2 {
            // Light the fuse: the next recorder call on some shard panics,
            // killing that worker thread mid-run.
            println!("step {step}: crashing one worker...");
            fuse.store(true, Ordering::SeqCst);
        }
        let wave: Vec<Submit> = streams
            .iter_mut()
            .enumerate()
            .map(|(s, stream)| {
                let o = stream.next_observation().expect("synthetic streams are infinite");
                Submit::new(SessionId(s as u64), o.features.clone(), o.label)
            })
            .collect();
        // submit_with_deadline bounds backpressure: if a shard queue is
        // full it parks until the worker drains (or the deadline passes),
        // instead of refusing like try_submit or spinning like a retry
        // loop. Nothing is enqueued on failure.
        let reply = server
            .submit_with_deadline(&wave, Duration::from_secs(10))
            .expect("queues drain well within 10s");
        pending.push(reply);
        if pending.len() >= 64 {
            tally(&mut pending, &mut served, &mut faulted);
        }
    }
    tally(&mut pending, &mut served, &mut faulted);
    println!("served {served} observations across {SESSIONS} sessions ({faulted} faulted)\n");

    println!("per-shard metrics:");
    for m in server.metrics() {
        println!(
            "  shard {}: {} sessions, {} requests in {} drains, {} restarts, \
             latency p50 {:.0} us / p99 {:.0} us, peak queue {}",
            m.shard,
            m.live_sessions,
            m.processed,
            m.batches,
            m.worker_restarts,
            m.latency.quantile_nanos(0.50) as f64 / 1e3,
            m.latency.quantile_nanos(0.99) as f64 / 1e3,
            m.max_queue_depth,
        );
    }

    // Shutdown drains the queues, snapshots every surviving session and
    // returns the final report. The crash cost no sessions: the supervisor
    // restarted the worker over the same session table.
    let report = server.shutdown();
    let restarts: u64 = report.metrics.iter().map(|m| m.worker_restarts).sum();
    let total_steps: u64 = report.snapshots.iter().map(|s| s.steps).sum();
    let total_drifts: u64 = report.snapshots.iter().map(|s| s.stats.n_drifts).sum();
    println!(
        "\nshutdown: {} session snapshots ({} worker restart{}), \
         {} observations processed, {} drifts detected",
        report.snapshots.len(),
        restarts,
        if restarts == 1 { "" } else { "s" },
        total_steps,
        total_drifts
    );
    assert_eq!(report.snapshots.len(), SESSIONS as usize, "no session lost to the crash");
    let processed: u64 = report.metrics.iter().map(|m| m.processed).sum();
    assert_eq!(processed, SESSIONS * STEPS as u64, "bookkeeping survived the crash");
    let rec = recorder.lock().expect("recorder mutex");
    println!(
        "recorder saw {} requests, {} sessions created, {} worker restart events",
        rec.counter_value("serve.requests"),
        rec.event_count("session_created"),
        rec.event_count("worker_restarted"),
    );
}

/// Awaits all pending replies, counting served outcomes and faulted slots.
fn tally(pending: &mut Vec<BatchReply>, served: &mut usize, faulted: &mut usize) {
    for reply in pending.drain(..) {
        for result in reply.wait() {
            match result {
                Ok(_) => *served += 1,
                Err(_) => *faulted += 1,
            }
        }
    }
}
