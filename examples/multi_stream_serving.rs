//! Multi-stream serving: 64 independent FiCSUM sessions served over 4
//! shard workers, with non-blocking backpressure and per-shard metrics.
//!
//! Each session is one logical stream (think: one sensor or tenant). The
//! server hash-partitions sessions across shards, builds each pipeline
//! lazily from a shared validated template, and serves batched submits —
//! results per session are bit-identical to running that session's
//! pipeline standalone.
//!
//! ```sh
//! cargo run --release --example multi_stream_serving
//! ```

use std::sync::{Arc, Mutex};

use ficsum::prelude::*;

const SESSIONS: u64 = 64;
const SHARDS: usize = 4;
const STEPS: usize = 600;

fn main() {
    // Validate the configuration once; every session is stamped from it.
    let template = SessionTemplate::new(3, 2, FicsumConfig::default(), Variant::Full)
        .expect("valid FiCSUM configuration");

    // One thread-safe recorder shared by all shards: counters, queue-depth
    // gauges and session lifecycle events aggregate here.
    let recorder = Arc::new(Mutex::new(InMemoryRecorder::new()));
    let rec_handle = recorder.clone();
    let server = StreamServer::with_recorder_factory(
        template,
        ServeConfig::default().with_shards(SHARDS).with_queue_capacity(4096),
        Some(Arc::new(move |_shard| Box::new(rec_handle.clone()) as Box<dyn Recorder>)),
    );

    // Each session gets its own STAGGER stream (distinct seeds → distinct
    // drift points), interleaved one observation per session per wave.
    let mut streams: Vec<_> = (0..SESSIONS)
        .map(|s| ficsum::synth::dataset_by_name("STAGGER", s).expect("STAGGER exists"))
        .collect();
    let mut pending = Vec::new();
    let mut served = 0usize;
    for _ in 0..STEPS {
        let wave: Vec<Submit> = streams
            .iter_mut()
            .enumerate()
            .map(|(s, stream)| {
                let o = stream.next_observation().expect("synthetic streams are infinite");
                Submit::new(SessionId(s as u64), o.features.clone(), o.label)
            })
            .collect();
        // try_submit never blocks: a full shard refuses the whole wave and
        // nothing is enqueued, so the wave can be retried after draining.
        match server.try_submit(&wave) {
            Ok(reply) => pending.push(reply),
            Err(ServeError::Overloaded { shard }) => {
                println!("shard {shard} overloaded; draining before retrying");
                served += pending.drain(..).map(|r| r.wait().len()).sum::<usize>();
                pending.push(server.try_submit(&wave).expect("queues just drained"));
            }
            Err(e) => panic!("submit failed: {e}"),
        }
    }
    served += pending.drain(..).map(|r| r.wait().len()).sum::<usize>();
    println!("served {served} observations across {SESSIONS} sessions\n");

    println!("per-shard metrics:");
    for m in server.metrics() {
        println!(
            "  shard {}: {} sessions, {} requests in {} drains, \
             latency p50 {:.0} us / p99 {:.0} us, peak queue {}",
            m.shard,
            m.live_sessions,
            m.processed,
            m.batches,
            m.latency.quantile_nanos(0.50) as f64 / 1e3,
            m.latency.quantile_nanos(0.99) as f64 / 1e3,
            m.max_queue_depth,
        );
    }

    // Shutdown drains the queues, snapshots every surviving session and
    // returns the final report.
    let report = server.shutdown();
    let total_drifts: u64 = report.snapshots.iter().map(|s| s.stats.n_drifts).sum();
    println!(
        "\nshutdown: {} session snapshots, {} drifts detected in total",
        report.snapshots.len(),
        total_drifts
    );
    let rec = recorder.lock().expect("recorder mutex");
    println!(
        "recorder saw {} requests, {} sessions created",
        rec.counter_value("serve.requests"),
        rec.event_count("session_created"),
    );
}
