#!/bin/bash
# Tier-1 gate: build, test, property tests, and the deprecated-accessor
# allowlist. Run from anywhere; exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== property tests =="
cargo test -q --features property-tests

echo "== deprecated accessor allowlist =="
# The legacy trace accessors are deprecated thin views over the recorder
# (DESIGN.md "Observability"). Every remaining use must carry
# #[allow(deprecated)], and those annotations may only live in the files
# below (definitions, the eval shim, re-exports, and the parity /
# back-compat tests). Anything new must use the Recorder API instead.
RUSTFLAGS="-D deprecated" cargo check -q --workspace --all-targets
allowlist='^\./crates/core/src/framework\.rs$|^\./crates/core/src/variant\.rs$|^\./crates/eval/src/runner\.rs$|^\./crates/eval/src/lib\.rs$|^\./src/lib\.rs$|^\./tests/observability\.rs$|^\./tests/integration\.rs$'
offenders=$(grep -rlE 'allow\(deprecated\)' --include='*.rs' ./src ./crates ./tests ./examples \
  | grep -vE "$allowlist" || true)
if [ -n "$offenders" ]; then
  echo "allow(deprecated) outside the allowlist (migrate to the Recorder API):" >&2
  echo "$offenders" >&2
  exit 1
fi
echo "allowlist clean"

echo "ci.sh: all gates passed"
