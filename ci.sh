#!/bin/bash
# Tier-1 gate: build, test, property tests, and the deprecated-accessor
# allowlist. Run from anywhere; exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q

echo "== property tests =="
cargo test -q --features property-tests

echo "== fault-injection tests (ficsum-serve) =="
# Supervision, quarantine, checkpoint-restore and deadline behaviour under
# deterministic injected faults (DESIGN.md "Fault tolerance & recovery").
# The feature is off in release artifacts; this gate compiles the serve
# crate with the fail-point hooks and runs the serve_faults harness.
cargo test -q -p ficsum-serve --features fault-injection

echo "== deprecated accessor allowlist =="
# The legacy post-build setters on `Ficsum` are deprecated shims over
# `FicsumBuilder` options (DESIGN.md "Serving & sharding" → "Deprecation
# schedule"); the legacy trace accessors and window `to_vec` clones were
# removed outright. Every remaining deprecated use must carry
# #[allow(deprecated)], and those annotations may only live in the files
# below: the eval `evaluate` shim and its re-export, and the baselines
# adapter whose `attach_recorder` contract predates the builder options.
# Anything new must configure at construction time instead.
RUSTFLAGS="-D deprecated" cargo check -q --workspace --all-targets
allowlist='^\./crates/eval/src/runner\.rs$|^\./crates/eval/src/lib\.rs$|^\./src/lib\.rs$|^\./crates/baselines/src/ficsum_adapter\.rs$'
offenders=$(grep -rlE 'allow\(deprecated\)' --include='*.rs' ./src ./crates ./tests ./examples \
  | grep -vE "$allowlist" || true)
if [ -n "$offenders" ]; then
  echo "allow(deprecated) outside the allowlist (migrate to the Recorder API):" >&2
  echo "$offenders" >&2
  exit 1
fi
echo "allowlist clean"

echo "== perf smoke (stream_throughput vs committed baseline) =="
# Release-mode end-to-end throughput on the default synthetic stream,
# compared against the committed BENCH_stream.json (DESIGN.md "Hot path &
# allocation budget"). Fails when steps/sec drops >20% below the baseline.
if [ ! -f BENCH_stream.json ]; then
  echo "BENCH_stream.json missing; record it with:" >&2
  echo "  cargo run --release -p ficsum-bench --features alloc-count \\" >&2
  echo "    --bin stream_throughput -- --repeat 5 --out BENCH_stream.json" >&2
  exit 1
fi
cargo run --release -q -p ficsum-bench --bin stream_throughput -- \
  --repeat 3 --check BENCH_stream.json --min-ratio 0.8

echo "== perf smoke (serve_throughput vs committed baseline) =="
# Aggregate multi-session serving throughput (sessions x shards) against
# the committed BENCH_serve.json (DESIGN.md "Serving & sharding"). The
# baseline's `cores` field records the machine it was taken on; the gate
# regresses same-machine throughput, failing on a >20% drop.
if [ ! -f BENCH_serve.json ]; then
  echo "BENCH_serve.json missing; record it with:" >&2
  echo "  cargo run --release -p ficsum-bench --bin serve_throughput -- \\" >&2
  echo "    --repeat 5 --out BENCH_serve.json" >&2
  exit 1
fi
cargo run --release -q -p ficsum-bench --bin serve_throughput -- \
  --repeat 3 --check BENCH_serve.json --min-ratio 0.8

echo "ci.sh: all gates passed"
