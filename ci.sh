#!/bin/bash
# Tier-1 gate: build, test, property tests, and the deprecated-accessor
# allowlist. Run from anywhere; exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q

echo "== property tests =="
cargo test -q --features property-tests

echo "== deprecated accessor allowlist =="
# The legacy trace accessors are deprecated thin views over the recorder
# (DESIGN.md "Observability"). Every remaining use must carry
# #[allow(deprecated)], and those annotations may only live in the files
# below (definitions, the eval shim, re-exports, and the parity /
# back-compat tests). Anything new must use the Recorder API instead.
# The same rule covers the deprecated `to_vec` deep-clone window accessors
# (DESIGN.md "Hot path & allocation budget"): their only allowed
# annotation is the definition-site shim in crates/stream/src/window.rs.
RUSTFLAGS="-D deprecated" cargo check -q --workspace --all-targets
allowlist='^\./crates/core/src/framework\.rs$|^\./crates/core/src/variant\.rs$|^\./crates/eval/src/runner\.rs$|^\./crates/eval/src/lib\.rs$|^\./src/lib\.rs$|^\./tests/observability\.rs$|^\./tests/integration\.rs$|^\./crates/stream/src/window\.rs$'
offenders=$(grep -rlE 'allow\(deprecated\)' --include='*.rs' ./src ./crates ./tests ./examples \
  | grep -vE "$allowlist" || true)
if [ -n "$offenders" ]; then
  echo "allow(deprecated) outside the allowlist (migrate to the Recorder API):" >&2
  echo "$offenders" >&2
  exit 1
fi
echo "allowlist clean"

echo "== perf smoke (stream_throughput vs committed baseline) =="
# Release-mode end-to-end throughput on the default synthetic stream,
# compared against the committed BENCH_stream.json (DESIGN.md "Hot path &
# allocation budget"). Fails when steps/sec drops >20% below the baseline.
if [ ! -f BENCH_stream.json ]; then
  echo "BENCH_stream.json missing; record it with:" >&2
  echo "  cargo run --release -p ficsum-bench --features alloc-count \\" >&2
  echo "    --bin stream_throughput -- --repeat 5 --out BENCH_stream.json" >&2
  exit 1
fi
cargo run --release -q -p ficsum-bench --bin stream_throughput -- \
  --repeat 3 --check BENCH_stream.json --min-ratio 0.8

echo "ci.sh: all gates passed"
