#!/bin/bash
# Tier-1 gate: build, test, property tests, and the deprecated-accessor
# allowlist. Run from anywhere; exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test -q

echo "== property tests =="
cargo test -q --features property-tests

echo "== fault-injection tests (ficsum-serve) =="
# Supervision, quarantine, checkpoint-restore and deadline behaviour under
# deterministic injected faults (DESIGN.md "Fault tolerance & recovery").
# The feature is off in release artifacts; this gate compiles the serve
# crate with the fail-point hooks and runs the serve_faults harness.
cargo test -q -p ficsum-serve --features fault-injection

echo "== no deprecated API surface =="
# Every scheduled deprecation has been removed (DESIGN.md "Deprecation
# schedule"): the 0.4.0 post-build `set_*` shims and the legacy eval
# `evaluate` shim are gone, so the tree must compile with `-D deprecated`
# and contain no `allow(deprecated)` escape hatches at all.
RUSTFLAGS="-D deprecated" cargo check -q --workspace --all-targets
offenders=$(grep -rlE 'allow\(deprecated\)' --include='*.rs' ./src ./crates ./tests ./examples || true)
if [ -n "$offenders" ]; then
  echo "allow(deprecated) found; the workspace carries no deprecated API:" >&2
  echo "$offenders" >&2
  exit 1
fi
echo "no deprecated items, no allowances"

echo "== perf smoke (stream_throughput vs committed baseline) =="
# Release-mode end-to-end throughput on the default synthetic stream,
# compared against the committed BENCH_stream.json (DESIGN.md "Hot path &
# allocation budget"). Fails when steps/sec drops >20% below the baseline.
if [ ! -f BENCH_stream.json ]; then
  echo "BENCH_stream.json missing; record both modes with:" >&2
  echo "  cargo run --release -p ficsum-bench --features alloc-count \\" >&2
  echo "    --bin stream_throughput -- --repeat 5 --out BENCH_stream.json" >&2
  echo "  cargo run --release -p ficsum-bench --features alloc-count \\" >&2
  echo "    --bin stream_throughput -- --repeat 5 --incremental --emd-stride 4 \\" >&2
  echo "    --append BENCH_stream.json" >&2
  exit 1
fi
cargo run --release -q -p ficsum-bench --bin stream_throughput -- \
  --repeat 3 --check BENCH_stream.json --min-ratio 0.8
# Same gate for the incremental-statistics mode: --check matches this
# run against the baseline line with "mode":"incremental".
cargo run --release -q -p ficsum-bench --bin stream_throughput -- \
  --repeat 3 --incremental --emd-stride 4 --check BENCH_stream.json --min-ratio 0.8

echo "== perf smoke (extraction_throughput vs committed baseline) =="
# Steady-state fingerprint extraction: the engine path and the
# incremental-statistics streaming path against the committed
# BENCH_extract.json (DESIGN.md "Incremental statistics"), failing when
# either drops >20% below baseline. --assert-zero-alloc additionally
# fails if the incremental steady state allocates at all (the counting
# allocator is compiled in via the alloc-count feature).
if [ ! -f BENCH_extract.json ]; then
  echo "BENCH_extract.json missing; record it with:" >&2
  echo "  cargo run --release -p ficsum-bench --features alloc-count \\" >&2
  echo "    --bin extraction_throughput -- --assert-zero-alloc --out BENCH_extract.json" >&2
  exit 1
fi
cargo run --release -q -p ficsum-bench --features alloc-count \
  --bin extraction_throughput -- \
  --secs 0.15 --reps 4 --assert-zero-alloc --check BENCH_extract.json --min-ratio 0.8

echo "== perf smoke (serve_throughput vs committed baseline) =="
# Aggregate multi-session serving throughput (sessions x shards) against
# the committed BENCH_serve.json (DESIGN.md "Serving & sharding"). The
# baseline's `cores` field records the machine it was taken on; the gate
# regresses same-machine throughput, failing on a >20% drop.
if [ ! -f BENCH_serve.json ]; then
  echo "BENCH_serve.json missing; record it with:" >&2
  echo "  cargo run --release -p ficsum-bench --bin serve_throughput -- \\" >&2
  echo "    --repeat 5 --out BENCH_serve.json" >&2
  exit 1
fi
cargo run --release -q -p ficsum-bench --bin serve_throughput -- \
  --repeat 3 --check BENCH_serve.json --min-ratio 0.8

echo "== perf smoke (net_throughput vs committed baseline) =="
# End-to-end throughput through the wire protocol: client encode →
# loopback TCP → frame decode → shard queues → reply → client decode
# (DESIGN.md "Network serving & wire protocol"). Fails when steps/sec
# drops >20% below the committed BENCH_net.json on the same machine.
if [ ! -f BENCH_net.json ]; then
  echo "BENCH_net.json missing; record it with:" >&2
  echo "  cargo run --release -p ficsum-bench --bin net_throughput -- \\" >&2
  echo "    --repeat 5 --out BENCH_net.json" >&2
  exit 1
fi
cargo run --release -q -p ficsum-bench --bin net_throughput -- \
  --repeat 3 --check BENCH_net.json --min-ratio 0.8

echo "ci.sh: all gates passed"
