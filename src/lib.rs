//! # FiCSUM — fingerprinting concepts in data streams
//!
//! A complete Rust reproduction of *"Fingerprinting Concepts in Data
//! Streams with Supervised and Unsupervised Meta-Information"* (Halstead,
//! Koh, Riddle, Pechenizkiy, Bifet, Pears — ICDE 2021), including every
//! substrate the paper depends on: incremental classifiers, drift
//! detectors, meta-information functions, stream generators, baseline
//! frameworks and the evaluation machinery.
//!
//! ## Quick start
//!
//! ```
//! use ficsum::prelude::*;
//!
//! // A stream whose labelling function changes every 500 observations.
//! let mut stream = ficsum::synth::stagger_stream(7);
//! let mut system = FicsumBuilder::new(stream.dims(), stream.n_classes()).build()?;
//!
//! let mut correct = 0;
//! let mut n = 0;
//! while let Some(obs) = stream.next_observation() {
//!     let outcome = system.process(&obs.features, obs.label);
//!     if outcome.prediction == obs.label {
//!         correct += 1;
//!     }
//!     n += 1;
//!     if n >= 3000 {
//!         break;
//!     }
//! }
//! assert!(correct as f64 / n as f64 > 0.5);
//! # Ok::<(), ConfigError>(())
//! ```
//!
//! ## Workspace map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`stream`] | `ficsum-stream` | observations, windows, online statistics |
//! | [`drift`] | `ficsum-drift` | ADWIN, DDM, EDDM, HDDM-A |
//! | [`classifiers`] | `ficsum-classifiers` | Hoeffding tree, naive Bayes, ARF, DWM |
//! | [`meta`] | `ficsum-meta` | the 13 meta-information functions and extraction |
//! | [`core`] | `ficsum-core` | fingerprints, dynamic weighting, the FiCSUM driver |
//! | [`synth`] | `ficsum-synth` | stream generators and the Table II datasets |
//! | [`baselines`] | `ficsum-baselines` | HTCD, RCD, DWM/ARF adapters |
//! | [`eval`] | `ficsum-eval` | kappa, C-F1, Friedman/Nemenyi, the runner |
//! | [`obs`] | `ficsum-obs` | recorders, stream events, stage spans, JSONL sinks |
//! | [`serve`] | `ficsum-serve` | sharded multi-session serving, bounded queues, LRU eviction |
//! | [`net`] | `ficsum-net` | wire protocol, TCP front-end, blocking client |

pub use ficsum_baselines as baselines;
pub use ficsum_classifiers as classifiers;
pub use ficsum_core as core;
pub use ficsum_drift as drift;
pub use ficsum_eval as eval;
pub use ficsum_meta as meta;
pub use ficsum_net as net;
pub use ficsum_obs as obs;
pub use ficsum_serve as serve;
pub use ficsum_stream as stream;
pub use ficsum_synth as synth;

/// The most common imports for working with FiCSUM.
///
/// Covers the whole public surface an application needs: the framework and
/// its builder, configuration (and its error type), the fingerprint engine
/// and extractor, classifiers, every drift detector, stream vocabulary, the
/// repo-owned RNG, synthetic generators, the evaluation entry points and
/// the serving stack (in-process sharded serving plus the TCP front-end
/// and client).
pub mod prelude {
    pub use ficsum_baselines::{EnsembleSystem, FicsumSystem, Htcd, Rcd};
    pub use ficsum_classifiers::{
        AdaptiveRandomForest, Classifier, ClassifierFactory, GaussianNaiveBayes, HoeffdingTree,
    };
    pub use ficsum_core::{
        ConfigError, Ficsum, FicsumBuilder, FicsumConfig, FicsumStats, RestoreError,
        SessionCheckpoint, SessionTemplate, StepOutcome, Variant,
    };
    pub use ficsum_drift::{
        Adwin, Ddm, DetectorState, DriftDetector, Eddm, HddmA, PageHinkley,
    };
    pub use ficsum_drift::RecordedDetector;
    pub use ficsum_eval::{
        evaluate_with, EvaluatedSystem, KappaEvaluator, ObsSummary, RunOptions, RunResult,
        StageCost,
    };
    pub use ficsum_meta::{
        FingerprintEngine, FingerprintExtractor, MetaFunction, SourceSelection,
    };
    pub use ficsum_net::{
        ConnRecorderFactory, NetClient, NetError, NetMetrics, NetOptions, NetReport, NetServer,
        ProtocolError, RemoteOutcome, RemoteStepResult, SnapshotSummary,
    };
    pub use ficsum_obs::{
        shared, Clock, DriftTrigger, InMemoryRecorder, JsonlSink, LatencyHistogram, ManualClock,
        MonotonicClock, NullRecorder, Recorder, SharedRecorder, Stage, StreamEvent,
    };
    pub use ficsum_serve::{
        BatchReply, EvictReason, RecorderFactory, RetryPolicy, ServeConfig, ServeError,
        ServeOptions, ServeReport, SessionId, SessionSnapshot, ShardMetrics, StepError,
        StepResult, StreamServer, Submit,
    };
    pub use ficsum_stream::rng::{RandomSource, Xoshiro256pp};
    pub use ficsum_stream::{
        ConceptStream, LabeledObservation, Observation, SlidingWindow, StreamSource, VecStream,
    };
    pub use ficsum_synth::{
        dataset_by_name, ChannelModulation, ConceptGenerator, DatasetSpec, LabelledConcept,
        ModulatedSampler, RandomTreeLabeller, RecurringStreamBuilder, UniformSampler,
        ALL_DATASETS,
    };
}
