#!/bin/bash
# Regenerates every table and figure of the paper. Results land in results/.
set -u
cd "$(dirname "$0")"
SEEDS="${SEEDS:-1}"
cargo run --release -p ficsum-bench --bin table2_datasets > results/table2.txt 2>/dev/null
echo "table2 done"
cargo run --release -p ficsum-bench --bin table3_discrimination -- --seeds "$SEEDS" > results/table3.txt 2>results/table3.log
echo "table3 done"
cargo run --release -p ficsum-bench --bin table4_performance -- --seeds "$SEEDS" > results/table4.txt 2>results/table4.log
echo "table4 done"
cargo run --release -p ficsum-bench --bin table5_meta_functions -- --seeds "$SEEDS" > results/table5.txt 2>results/table5.log
echo "table5 done"
cargo run --release -p ficsum-bench --bin table6_frameworks -- --seeds "$SEEDS" > results/table6.txt 2>results/table6.log
echo "table6 done"
cargo run --release -p ficsum-bench --bin fig3_sensitivity -- --quick > results/fig3.txt 2>results/fig3.log
echo "fig3 done"
cargo run --release -p ficsum-bench --bin ablations -- --seeds "$SEEDS" --quick > results/ablations.txt 2>results/ablations.log
echo "ablations done"
