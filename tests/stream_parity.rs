//! Golden end-to-end parity for the streaming hot path.
//!
//! The SoA frame store, cached similarity norms, epoch-gated weights and
//! the parallel recurrence scan are all required to be *bit-identical* to
//! the original per-observation path. This test pins the full trajectory
//! of deterministic runs — every `StepOutcome`, every drift point, every
//! recorded event count — against a golden file blessed from the
//! pre-refactor implementation.
//!
//! Regenerate (only when a change is *intended* to alter trajectories):
//!
//! ```sh
//! FICSUM_BLESS=1 cargo test --test stream_parity
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use ficsum::prelude::*;

/// FNV-1a over the raw little-endian bytes of each step outcome: any bit
/// of divergence in any step changes the digest.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

struct Trajectory {
    name: &'static str,
    steps: usize,
    outcome_digest: u64,
    accuracy_millionths: u64,
    drift_points: Vec<u64>,
    switches: Vec<(u64, u64, u64)>,
    stats: FicsumStats,
}

impl Trajectory {
    fn render(&self) -> String {
        let mut s = String::new();
        writeln!(s, "scenario {}", self.name).unwrap();
        writeln!(s, "steps {}", self.steps).unwrap();
        writeln!(s, "outcome_digest {:016x}", self.outcome_digest).unwrap();
        writeln!(s, "accuracy_millionths {}", self.accuracy_millionths).unwrap();
        let pts: Vec<String> = self.drift_points.iter().map(u64::to_string).collect();
        writeln!(s, "drift_points {}", pts.join(",")).unwrap();
        let sw: Vec<String> =
            self.switches.iter().map(|(t, f, to)| format!("{t}:{f}->{to}")).collect();
        writeln!(s, "switches {}", sw.join(",")).unwrap();
        writeln!(
            s,
            "stats drifts={} reuses={} new={} rechecks={} plasticity={}",
            self.stats.n_drifts,
            self.stats.n_reuses,
            self.stats.n_new_concepts,
            self.stats.n_recheck_switches,
            self.stats.n_plasticity_resets
        )
        .unwrap();
        s
    }
}

fn run_scenario(
    name: &'static str,
    dataset: &str,
    seed: u64,
    steps: usize,
    config: FicsumConfig,
    threads: usize,
) -> Trajectory {
    let keep = shared(InMemoryRecorder::new());
    let mut stream = ficsum::synth::dataset_by_name(dataset, seed)
        .unwrap_or_else(|| panic!("unknown dataset {dataset}"));
    let mut system = FicsumBuilder::new(stream.dims(), stream.n_classes())
        .config(config)
        .recorder(Box::new(keep.clone()))
        .parallelism(threads)
        .build()
        .unwrap();
    let mut digest = Digest::new();
    let mut n = 0usize;
    let mut correct = 0u64;
    for _ in 0..steps {
        let Some(o) = stream.next_observation() else { break };
        let out = system.process(&o.features, o.label);
        digest.push(out.prediction as u64);
        digest.push(out.drift as u64);
        digest.push(out.concept_switched as u64);
        digest.push(out.active_concept as u64);
        correct += (out.prediction == o.label) as u64;
        n += 1;
    }
    let rec = keep.borrow();
    Trajectory {
        name,
        steps: n,
        outcome_digest: digest.0,
        accuracy_millionths: correct * 1_000_000 / n as u64,
        drift_points: rec.drift_points().to_vec(),
        switches: rec
            .concept_switches()
            .iter()
            .map(|&(t, f, to)| (t, f, to))
            .collect(),
        stats: system.stats(),
    }
}

fn quick_config() -> FicsumConfig {
    FicsumConfig::default().with_window_size(50).with_fingerprint_gap(5).with_repository_gap(50)
}

fn scenarios(threads: usize) -> String {
    [
        run_scenario("stagger_default", "STAGGER", 5, 12_000, FicsumConfig::default(), threads),
        run_scenario("stagger_quick", "STAGGER", 9, 9_000, quick_config(), threads),
        run_scenario("rtree_default", "RTREE", 3, 9_000, FicsumConfig::default(), threads),
        run_scenario("hplane_quick", "HPLANE-U", 7, 9_000, quick_config(), threads),
    ]
    .iter()
    .map(Trajectory::render)
    .collect::<Vec<_>>()
    .join("\n")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/stream_parity.txt")
}

#[test]
fn trajectories_match_golden_bit_exactly() {
    let rendered = scenarios(1);
    let path = golden_path();
    if std::env::var_os("FICSUM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with FICSUM_BLESS=1", path.display()));
    assert_eq!(
        golden, rendered,
        "stream trajectories diverged from the blessed pre-refactor path"
    );
}

#[test]
fn parallel_scan_is_bit_identical_to_sequential() {
    // The drift-time repository scan fans out across worker threads; its
    // merge is required to be deterministic, so the whole trajectory must
    // be invariant to the thread count.
    let sequential = scenarios(1);
    let parallel = scenarios(4);
    assert_eq!(sequential, parallel, "thread count must not change any trajectory");
}
