//! The serving subsystem's headline guarantee: a session served through a
//! sharded `StreamServer` produces **bit-identical** `StepOutcome`s to a
//! standalone pipeline stamped from the same template — concurrency changes
//! wall-clock behaviour only, never results. Plus the backpressure and
//! lifecycle contracts: `try_submit` is all-or-nothing and non-blocking,
//! and evicted sessions leave snapshots.

use std::sync::{Arc, Mutex};

use ficsum::prelude::*;

const SESSIONS: usize = 16;
const SHARDS: usize = 4;
const STEPS: usize = 1_200;

/// Per-session observation tapes: distinct STAGGER seeds so sessions drift
/// at different points and exercise independent repositories.
fn tapes() -> Vec<Vec<(Vec<f64>, usize)>> {
    (0..SESSIONS)
        .map(|s| {
            let mut stream = ficsum::synth::dataset_by_name("STAGGER", 100 + s as u64).unwrap();
            (0..STEPS)
                .map(|_| {
                    let o = stream.next_observation().expect("synthetic streams are infinite");
                    (o.features.clone(), o.label)
                })
                .collect()
        })
        .collect()
}

fn template() -> SessionTemplate {
    let config = FicsumConfig::default().with_window_size(50).with_fingerprint_gap(5);
    SessionTemplate::new(3, 2, config, Variant::Full).unwrap()
}

#[test]
fn served_outcomes_are_bit_identical_to_sequential_reference() {
    let tapes = tapes();
    let template = template();
    let recorder = Arc::new(Mutex::new(InMemoryRecorder::new()));
    let rec_handle = recorder.clone();
    let server = StreamServer::with_recorder_factory(
        template.clone(),
        ServeConfig::default()
            .with_shards(SHARDS)
            // Room for every request of the run: lets the test enqueue all
            // waves without waiting, maximising cross-session interleaving.
            .with_queue_capacity(SESSIONS * STEPS),
        Some(Arc::new(move |_shard| Box::new(rec_handle.clone()) as Box<dyn Recorder>)),
    );

    // Submit wave-by-wave (one observation per session per wave) without
    // awaiting replies, so shards interleave sessions as they please.
    let mut replies = Vec::with_capacity(STEPS);
    let mut cursors: Vec<_> = tapes.iter().map(|tape| tape.iter()).collect();
    for _ in 0..STEPS {
        let wave: Vec<Submit> = cursors
            .iter_mut()
            .enumerate()
            .map(|(s, tape)| {
                let (features, label) = tape.next().expect("tapes hold STEPS entries");
                Submit::new(SessionId(s as u64), features.clone(), *label)
            })
            .collect();
        replies.push(server.try_submit(&wave).expect("queues sized for the whole run"));
    }
    let mut served: Vec<Vec<StepOutcome>> =
        (0..SESSIONS).map(|_| Vec::with_capacity(STEPS)).collect();
    for reply in replies {
        for (s, result) in reply.wait().into_iter().enumerate() {
            served[s].push(result.expect("no faults in this run"));
        }
    }

    // Reference: each session standalone, same template, same tape.
    for s in 0..SESSIONS {
        let mut reference = template.instantiate();
        for (step, (features, label)) in tapes[s].iter().enumerate() {
            let expected = reference.process(features, *label);
            assert_eq!(
                served[s][step], expected,
                "session {s} diverged from the sequential reference at step {step}"
            );
        }
    }

    let report = server.shutdown();
    assert_eq!(report.snapshots.len(), SESSIONS, "every session snapshotted at shutdown");
    assert!(report.snapshots.iter().all(|snap| snap.steps == STEPS as u64));
    let processed: u64 = report.metrics.iter().map(|m| m.processed).sum();
    assert_eq!(processed, (SESSIONS * STEPS) as u64);
    assert!(
        report.metrics.iter().all(|m| m.processed > 0),
        "all {SHARDS} shards participated: {report:?}"
    );
    // The recorder saw the whole run: per-shard counters sum to the total,
    // and each session announced its creation exactly once.
    let rec = recorder.lock().unwrap();
    assert_eq!(rec.counter_value("serve.requests"), (SESSIONS * STEPS) as u64);
    assert_eq!(rec.event_count("session_created"), SESSIONS);
    let latency_total: u64 = report.metrics.iter().map(|m| m.latency.count()).sum();
    assert_eq!(latency_total, (SESSIONS * STEPS) as u64);
}

#[test]
fn overloaded_submit_rejects_whole_batch_and_leaves_nothing_behind() {
    let server = StreamServer::new(
        template(),
        ServeConfig::default().with_shards(1).with_queue_capacity(8),
    );
    // A batch larger than the queue can ever hold is refused regardless of
    // how fast the worker drains — deterministic backpressure coverage.
    let oversized: Vec<Submit> =
        (0..9).map(|i| Submit::new(SessionId(i % 3), vec![0.2, 0.4, 0.6], 0)).collect();
    match server.try_submit(&oversized) {
        Err(ServeError::Overloaded { shard }) => assert_eq!(shard, 0),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let metrics = server.metrics();
    assert_eq!(metrics[0].enqueued, 0, "rejection must not enqueue anything");
    // The refused batch is retryable verbatim once sized within capacity.
    let within: Vec<Submit> = oversized[..8].to_vec();
    let outcomes = server.try_submit(&within).expect("8 requests fit capacity 8").wait();
    assert_eq!(outcomes.len(), 8);
    assert!(outcomes.iter().all(|r| r.is_ok()));
    let report = server.shutdown();
    assert_eq!(report.metrics[0].enqueued, 8);
    assert_eq!(report.metrics[0].processed, 8);
}

#[test]
fn capacity_cap_evicts_lru_sessions_with_snapshots() {
    let server = StreamServer::new(
        template(),
        ServeConfig::default().with_shards(1).with_max_sessions_per_shard(2),
    );
    // Touch sessions 0..4 in order; with a cap of 2 the older ones must be
    // snapshotted out as the newer ones arrive.
    for id in 0..4u64 {
        let batch = [Submit::new(SessionId(id), vec![0.1, 0.5, 0.9], 1)];
        server.try_submit(&batch).expect("single requests always fit").wait();
    }
    let evicted = server.drain_snapshots();
    assert_eq!(evicted.len(), 2);
    assert!(evicted.iter().all(|s| s.reason == EvictReason::Capacity && s.steps == 1));
    let evicted_ids: Vec<u64> = evicted.iter().map(|s| s.session.0).collect();
    assert_eq!(evicted_ids, vec![0, 1], "LRU order");
    let report = server.shutdown();
    let surviving: Vec<u64> = report.snapshots.iter().map(|s| s.session.0).collect();
    assert_eq!(surviving, vec![2, 3]);
    assert!(report.snapshots.iter().all(|s| s.reason == EvictReason::Shutdown));
    assert_eq!(report.metrics[0].sessions_created, 4);
    assert_eq!(report.metrics[0].sessions_evicted, 2);
}

#[test]
fn sessions_are_sticky_to_their_shard() {
    let server = StreamServer::new(template(), ServeConfig::default().with_shards(SHARDS));
    for id in 0..64u64 {
        let shard = server.shard_of(SessionId(id));
        assert!(shard < SHARDS);
        for _ in 0..3 {
            assert_eq!(server.shard_of(SessionId(id)), shard);
        }
    }
}
