//! Cross-crate integration tests: the full FiCSUM pipeline driven over
//! composed recurring-concept streams, the baseline frameworks under the
//! shared evaluation runner, and end-to-end metric sanity.

use ficsum::prelude::*;

fn run_system(mut system: impl EvaluatedSystem, name: &str, cap: usize) -> RunResult {
    let stream = dataset_by_name(name, 11).expect("dataset exists");
    let n_classes = stream.n_classes();
    let data: Vec<_> = stream.observations().iter().take(cap).cloned().collect();
    let mut stream = ficsum::stream::VecStream::with_classes(data, n_classes);
    evaluate_with(&mut system, &mut stream, &RunOptions::new(n_classes))
}

#[test]
fn ficsum_full_pipeline_on_stagger() {
    let r = run_system(FicsumSystem::new(3, 2, Variant::Full), "STAGGER", 10_000);
    assert!(r.kappa > 0.25, "kappa {}", r.kappa);
    assert!(r.c_f1 > 0.2, "c_f1 {}", r.c_f1);
    assert_eq!(r.n_observations, 10_000);
    assert!(r.n_models >= 2, "recurring STAGGER must yield multiple models");
}

#[test]
fn all_variants_complete_on_rbf() {
    for variant in [Variant::ErrorRate, Variant::Supervised, Variant::Unsupervised, Variant::Full]
    {
        let r = run_system(FicsumSystem::new(10, 3, variant), "RBF", 6_000);
        assert_eq!(r.n_observations, 6_000, "{variant:?}");
        assert!(r.kappa > -0.2, "{variant:?} kappa {}", r.kappa);
        assert!((0.0..=1.0).contains(&r.c_f1), "{variant:?} c_f1 {}", r.c_f1);
    }
}

#[test]
fn baseline_frameworks_complete_on_rtree() {
    let r = run_system(Htcd::new(10, 2), "RTREE", 6_000);
    assert!(r.kappa > 0.0, "HTCD kappa {}", r.kappa);
    let r = run_system(Rcd::new(10, 2), "RTREE", 6_000);
    assert!(r.kappa > -0.2, "RCD kappa {}", r.kappa);
    let r = run_system(EnsembleSystem::arf(10, 2), "RTREE", 6_000);
    assert!(r.kappa > 0.2, "ARF kappa {}", r.kappa);
    let r = run_system(EnsembleSystem::dwm(10, 2), "RTREE", 6_000);
    assert!(r.kappa > 0.0, "DWM kappa {}", r.kappa);
}

#[test]
fn ensembles_report_single_model_identity() {
    let r = run_system(EnsembleSystem::arf(3, 2), "STAGGER", 3_000);
    assert_eq!(r.n_models, 1, "ARF has one evolving model");
}

#[test]
fn every_dataset_runs_through_full_ficsum_briefly() {
    for spec in ALL_DATASETS {
        let mut stream = dataset_by_name(spec.name, 3).unwrap();
        let mut system = FicsumBuilder::new(stream.dims(), stream.n_classes()).build().unwrap();
        for _ in 0..1500 {
            let Some(o) = stream.next_observation() else { break };
            let out = system.process(&o.features, o.label);
            assert!(out.prediction < stream.n_classes().max(2), "{}", spec.name);
        }
    }
}

#[test]
fn drift_points_are_monotonic_and_counted() {
    let keep = shared(InMemoryRecorder::new());
    let mut stream = dataset_by_name("STAGGER", 5).unwrap();
    let mut system = FicsumBuilder::new(3, 2).recorder(Box::new(keep.clone())).build().unwrap();
    for _ in 0..12_000 {
        let Some(o) = stream.next_observation() else { break };
        system.process(&o.features, o.label);
    }
    let points = keep.borrow().drift_points();
    assert_eq!(points.len() as u64, system.stats().n_drifts);
    assert!(points.windows(2).all(|w| w[0] < w[1]), "drift points sorted");
}

#[test]
fn repository_respects_capacity_bound() {
    let config = FicsumConfig::default().with_max_repository(3);
    let mut stream = dataset_by_name("STAGGER", 9).unwrap();
    let mut system = FicsumBuilder::new(3, 2).config(config).build().unwrap();
    for _ in 0..15_000 {
        let Some(o) = stream.next_observation() else { break };
        system.process(&o.features, o.label);
    }
    assert!(system.repository().len() <= 3, "repo {}", system.repository().len());
}

#[test]
fn similarity_trace_records_bounded_values() {
    let keep = shared(InMemoryRecorder::new());
    let mut stream = dataset_by_name("RBF", 2).unwrap();
    let mut system = FicsumBuilder::new(10, 3).recorder(Box::new(keep.clone())).build().unwrap();
    for _ in 0..4_000 {
        let Some(o) = stream.next_observation() else { break };
        system.process(&o.features, o.label);
    }
    let trace = keep.borrow().similarity_trace();
    assert!(!trace.is_empty());
    assert!(trace.iter().all(|(_, s)| (-1.0..=1.0).contains(s)));
}

#[test]
fn served_sessions_match_prelude_types() {
    // The serve subsystem is reachable entirely through the prelude.
    let template = SessionTemplate::new(3, 2, FicsumConfig::default(), Variant::Full).unwrap();
    let server = StreamServer::new(template, ServeConfig::default().with_shards(2));
    let mut stream = dataset_by_name("STAGGER", 4).unwrap();
    let mut batch = Vec::new();
    for i in 0..64u64 {
        let o = stream.next_observation().unwrap();
        batch.push(Submit::new(SessionId(i % 8), o.features.clone(), o.label));
    }
    let outcomes = server.try_submit(&batch).expect("empty server accepts").wait();
    assert_eq!(outcomes.len(), 64);
    let report: ServeReport = server.shutdown();
    assert_eq!(report.snapshots.len(), 8);
}
