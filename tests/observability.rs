//! Invariants of the observability layer: the recorder is the single
//! source of truth for traces (the legacy accessors are gone), so these
//! tests pin that the recorded signals are internally consistent, agree
//! with the pipeline's own counters, and are bit-reproducible run-to-run.

use ficsum::prelude::*;

/// A recurring-concept STAGGER run with a shared in-memory recorder
/// attached.
fn recorded_run(n: usize) -> (Ficsum, SharedRecorder<InMemoryRecorder>) {
    let keep = shared(InMemoryRecorder::new());
    let mut system = FicsumBuilder::new(3, 2)
        .recorder(Box::new(keep.clone()))
        .build()
        .unwrap();
    let mut stream = ficsum::synth::dataset_by_name("STAGGER", 5).unwrap();
    for _ in 0..n {
        let Some(o) = stream.next_observation() else { break };
        system.process(&o.features, o.label);
    }
    (system, keep)
}

#[test]
fn drift_points_agree_with_framework_stats() {
    let (system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    let drifts = rec.drift_points();
    assert!(!drifts.is_empty(), "run must produce drifts");
    assert_eq!(drifts.len() as u64, system.stats().n_drifts);
    assert_eq!(rec.event_count("drift_detected") as u64, system.stats().n_drifts);
    assert!(drifts.windows(2).all(|w| w[0] < w[1]), "drift points strictly increase");
}

#[test]
fn similarity_trace_is_ordered_and_bounded() {
    let (_system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    let trace = rec.similarity_trace();
    assert!(!trace.is_empty(), "similarity must be observed");
    assert!(trace.windows(2).all(|w| w[0].0 < w[1].0), "timestamps strictly increase");
    assert!(
        trace.iter().all(|&(_, s)| (-1.0001..=1.0001).contains(&s)),
        "weighted cosine stays in [-1, 1]"
    );
}

#[test]
fn similarity_gauges_are_self_consistent() {
    let (_system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    let gauge = |name: &str| rec.gauges().find(|(n, _)| *n == name).map(|(_, v)| v);
    let count = gauge("ficsum.sim.count").expect("sim gauges published");
    assert!(count >= 0.0 && count.fract() == 0.0, "count gauge is integral: {count}");
    // The baseline absorbs a subset of the observed similarities, so its
    // count can never exceed the number of similarity observations.
    assert!(count as usize <= rec.similarity_trace().len());
    if count > 0.0 {
        let std_dev = gauge("ficsum.sim.std_dev").expect("std_dev published with count");
        let mean = gauge("ficsum.sim.mean").expect("mean published with count");
        assert!(std_dev >= 0.0);
        assert!((-1.0001..=1.0001).contains(&mean));
    }
}

#[test]
fn recorded_signals_are_bit_reproducible() {
    let (_sys_a, keep_a) = recorded_run(12_000);
    let (_sys_b, keep_b) = recorded_run(12_000);
    let (a, b) = (keep_a.borrow(), keep_b.borrow());
    assert_eq!(a.events().len(), b.events().len());
    assert_eq!(a.drift_points(), b.drift_points());
    assert_eq!(a.similarity_trace(), b.similarity_trace());
    assert_eq!(a.concept_switches(), b.concept_switches());
}

#[test]
fn drift_and_switch_events_interleave_in_causal_order() {
    let (_system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    let drifts = rec.drift_points();
    let switches = rec.concept_switches();
    assert!(!switches.is_empty(), "recurring stream must switch concepts");
    // Every recorded switch happens at the timestamp of some drift or
    // recheck; switch timestamps are non-decreasing and each model
    // selection follows the drift that triggered it within the step.
    assert!(switches.windows(2).all(|w| w[0].0 <= w[1].0));
    for &(t, _, _) in &switches {
        assert!(
            drifts.contains(&t) || switches.iter().filter(|s| s.0 == t).count() == 1,
            "switch at {t} should coincide with a drift or be a recheck"
        );
    }
}

#[test]
fn counters_reconcile_with_event_stream() {
    let (_system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    let drift_counter =
        rec.counters().find(|(n, _)| *n == "ficsum.drifts").map(|(_, v)| v).unwrap_or(0);
    assert_eq!(drift_counter, rec.drift_points().len() as u64);
    let switch_events = rec.event_count("concept_switch") as u64;
    let reuses = rec
        .counters()
        .filter(|(n, _)| *n == "ficsum.reuses" || *n == "ficsum.new_concepts" || *n == "ficsum.recheck_switches")
        .map(|(_, v)| v)
        .sum::<u64>();
    assert_eq!(switch_events, reuses, "every switch is classified exactly once");
}
