//! Golden parity between the observability layer and the deprecated
//! trace accessors: both views are fed from the same emission point in
//! `Ficsum::process`, so on an identical run they must agree bit-exactly.

#![allow(deprecated)] // the whole point is comparing against the legacy API

use ficsum::prelude::*;

/// A recurring-concept STAGGER run with both the legacy trace and a
/// shared in-memory recorder attached.
fn recorded_run(n: usize) -> (Ficsum, SharedRecorder<InMemoryRecorder>) {
    let keep = shared(InMemoryRecorder::new());
    let mut system = FicsumBuilder::new(3, 2)
        .recorder(Box::new(keep.clone()))
        .build()
        .unwrap();
    system.enable_similarity_trace();
    let mut stream = ficsum::synth::dataset_by_name("STAGGER", 5).unwrap();
    for _ in 0..n {
        let Some(o) = stream.next_observation() else { break };
        system.process(&o.features, o.label);
    }
    (system, keep)
}

#[test]
fn drift_points_match_recorded_events_bit_exactly() {
    let (system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    assert_eq!(system.drift_points(), rec.drift_points().as_slice());
    assert!(!rec.drift_points().is_empty(), "run must produce drifts");
    assert_eq!(rec.event_count("drift_detected") as u64, system.stats().n_drifts);
}

#[test]
fn similarity_trace_matches_recorded_observations_bit_exactly() {
    let (system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    let legacy = system.similarity_trace().expect("trace enabled");
    assert_eq!(legacy, rec.similarity_trace().as_slice());
    assert!(!legacy.is_empty());
}

#[test]
fn similarity_stats_agree_with_recorded_gauges() {
    let (system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    let (mean, std_dev, count) = system.similarity_stats();
    // Gauges republish on every baseline absorption and after each model
    // selection, so the last recorded value equals the live statistics
    // unless the baseline was reset (count back to 0) with nothing
    // absorbed since.
    let gauge = |name: &str| rec.gauges().find(|(n, _)| *n == name).map(|(_, v)| v);
    let g_count = gauge("ficsum.sim.count").expect("sim gauges published");
    if count > 0 {
        assert_eq!(g_count, count as f64);
        assert_eq!(gauge("ficsum.sim.mean"), Some(mean));
        assert_eq!(gauge("ficsum.sim.std_dev"), Some(std_dev));
    }
    assert!(std_dev >= 0.0);
}

#[test]
fn drift_and_switch_events_interleave_in_causal_order() {
    let (_system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    let drifts = rec.drift_points();
    let switches = rec.concept_switches();
    assert!(!switches.is_empty(), "recurring stream must switch concepts");
    // Every recorded switch happens at the timestamp of some drift or
    // recheck; switch timestamps are non-decreasing and each model
    // selection follows the drift that triggered it within the step.
    assert!(switches.windows(2).all(|w| w[0].0 <= w[1].0));
    for &(t, _, _) in &switches {
        assert!(
            drifts.contains(&t) || switches.iter().filter(|s| s.0 == t).count() == 1,
            "switch at {t} should coincide with a drift or be a recheck"
        );
    }
}

#[test]
fn counters_reconcile_with_event_stream() {
    let (_system, keep) = recorded_run(12_000);
    let rec = keep.borrow();
    let drift_counter =
        rec.counters().find(|(n, _)| *n == "ficsum.drifts").map(|(_, v)| v).unwrap_or(0);
    assert_eq!(drift_counter, rec.drift_points().len() as u64);
    let switch_events = rec.event_count("concept_switch") as u64;
    let reuses = rec
        .counters()
        .filter(|(n, _)| *n == "ficsum.reuses" || *n == "ficsum.new_concepts" || *n == "ficsum.recheck_switches")
        .map(|(_, v)| v)
        .sum::<u64>();
    assert_eq!(switch_events, reuses, "every switch is classified exactly once");
}
