//! Randomized property tests over the core data structures and invariants.
//!
//! Gated behind the off-by-default `property-tests` feature so the default
//! `cargo test -q` stays fast:
//!
//! ```sh
//! cargo test --features property-tests --test proptests
//! ```
//!
//! The suite is std-only and fully deterministic: every case is generated
//! from a seeded [`Xoshiro256pp`], so a failure reproduces exactly.
#![cfg(feature = "property-tests")]

use ficsum::core::{cosine, fingerprint_similarity, weighted_cosine, ConceptFingerprint};
use ficsum::drift::{Adwin, DriftDetector};
use ficsum::eval::KappaEvaluator;
use ficsum::meta::{
    autocorrelation, imf_entropies, kurtosis, lagged_mutual_information, mean,
    partial_autocorrelation, skewness, std_dev, turning_point_rate, EmdConfig,
    FingerprintExtractor,
};
use ficsum::stream::rng::{RandomSource, Xoshiro256pp};
use ficsum::stream::{EwStats, LabeledObservation, MinMaxScaler, RunningStats, SlidingWindow};

/// Cases per property. Each case draws fresh random inputs.
const CASES: usize = 64;

/// Runs `body` over `CASES` deterministic random cases; the case index is
/// folded into the seed so every case is distinct but reproducible.
fn for_cases(name: &str, mut body: impl FnMut(&mut Xoshiro256pp)) {
    for case in 0..CASES {
        let mut rng = Xoshiro256pp::seed_from_u64(0xF1C5_0000 + case as u64);
        // The name keys the stream too, so properties don't share inputs.
        for b in name.bytes() {
            rng = Xoshiro256pp::seed_from_u64(rng.next_u64() ^ b as u64);
        }
        body(&mut rng);
    }
}

/// A random vector of finite values in `[-1e6, 1e6)`, length in `[1, max_len)`.
fn finite_vec(rng: &mut Xoshiro256pp, max_len: usize) -> Vec<f64> {
    let len = rng.random_range(1..max_len);
    (0..len).map(|_| rng.random_range(-1e6..1e6)).collect()
}

/// A random vector of values in `[lo, hi)` with length in `[min_len, max_len)`.
fn vec_in(rng: &mut Xoshiro256pp, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = rng.random_range(min_len..max_len);
    (0..len).map(|_| rng.random_range(lo..hi)).collect()
}

#[test]
fn running_stats_match_batch() {
    for_cases("running_stats_match_batch", |rng| {
        let values = finite_vec(rng, 200);
        let mut s = RunningStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var));
        assert_eq!(s.count() as usize, values.len());
    });
}

#[test]
fn running_stats_merge_is_order_independent() {
    for_cases("running_stats_merge_is_order_independent", |rng| {
        let a = finite_vec(rng, 100);
        let b = finite_vec(rng, 100);
        let fill = |vals: &[f64]| {
            let mut s = RunningStats::new();
            vals.iter().for_each(|&v| s.push(v));
            s
        };
        let mut ab = fill(&a);
        ab.merge(&fill(&b));
        let mut ba = fill(&b);
        ba.merge(&fill(&a));
        assert!((ab.mean() - ba.mean()).abs() <= 1e-6 * (1.0 + ab.mean().abs()));
        assert!((ab.variance() - ba.variance()).abs() <= 1e-4 * (1.0 + ab.variance()));
    });
}

#[test]
fn incremental_moments_match_batch_over_windows() {
    use ficsum::stream::Moments;
    for_cases("incremental_moments_match_batch_over_windows", |rng| {
        let values = finite_vec(rng, 300);
        let w = rng.random_range(2..40usize);
        let mut m = Moments::new();
        for i in 0..values.len() {
            m.push(values[i]);
            if i >= w {
                m.remove(values[i - w]);
            }
            let lo = i.saturating_sub(w - 1);
            let slice = &values[lo..=i];
            let n = slice.len() as f64;
            let mu = slice.iter().sum::<f64>() / n;
            assert!((m.mean() - mu).abs() <= 1e-6 * (1.0 + mu.abs()));
            assert!((m.skewness() - skewness(slice)).abs() <= 1e-6);
            assert!((m.kurtosis() - kurtosis(slice)).abs() <= 1e-5);
        }
    });
}

#[test]
fn minmax_scaler_stays_in_unit_interval() {
    for_cases("minmax_scaler_stays_in_unit_interval", |rng| {
        let values = finite_vec(rng, 100);
        let probe = rng.random_range(-1e6..1e6);
        let mut m = MinMaxScaler::new();
        values.iter().for_each(|&v| m.observe(v));
        let s = m.scale(probe);
        assert!((0.0..=1.0).contains(&s));
    });
}

#[test]
fn ew_stats_mean_is_bounded_by_observed_range() {
    for_cases("ew_stats_mean_is_bounded_by_observed_range", |rng| {
        let values = finite_vec(rng, 100);
        let mut s = EwStats::new(0.1);
        values.iter().for_each(|&v| s.push(v));
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(s.mean() >= lo - 1e-9 && s.mean() <= hi + 1e-9);
        assert!(s.variance() >= 0.0);
    });
}

#[test]
fn cosine_is_bounded_and_symmetric() {
    for_cases("cosine_is_bounded_and_symmetric", |rng| {
        let a = finite_vec(rng, 32);
        let b = finite_vec(rng, 32);
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let s = cosine(a, b);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        assert!((s - cosine(b, a)).abs() < 1e-12);
    });
}

#[test]
fn weighted_cosine_self_similarity_is_one() {
    for_cases("weighted_cosine_self_similarity_is_one", |rng| {
        let a = vec_in(rng, 0.01, 1e3, 2, 32);
        let w: Vec<f64> = (0..a.len()).map(|_| rng.random_range(0.01..10.0)).collect();
        let s = weighted_cosine(&a, &a, &w);
        assert!((s - 1.0).abs() < 1e-9, "self-sim {s}");
    });
}

#[test]
fn fingerprint_similarity_bounded_for_normalised_inputs() {
    for_cases("fingerprint_similarity_bounded_for_normalised_inputs", |rng| {
        let a = vec_in(rng, 0.0, 1.0, 1, 32);
        let n = a.len();
        let b: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let w: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..5.0)).collect();
        let s = fingerprint_similarity(&a, &b, &w);
        assert!((0.0..=1.0).contains(&s), "sim {s}");
    });
}

#[test]
fn moment_functions_are_finite() {
    for_cases("moment_functions_are_finite", |rng| {
        let values = finite_vec(rng, 150);
        for f in [mean, std_dev, skewness, kurtosis, turning_point_rate] {
            assert!(f(&values).is_finite());
        }
        assert!(autocorrelation(&values, 1).is_finite());
        assert!(autocorrelation(&values, 2).is_finite());
        assert!(partial_autocorrelation(&values, 2).is_finite());
    });
}

#[test]
fn autocorrelation_is_bounded() {
    for_cases("autocorrelation_is_bounded", |rng| {
        let values = finite_vec(rng, 150);
        for lag in [1usize, 2] {
            let r = autocorrelation(&values, lag);
            assert!((-1.000001..=1.000001).contains(&r), "acf{lag}={r}");
        }
    });
}

#[test]
fn mutual_information_is_nonnegative() {
    for_cases("mutual_information_is_nonnegative", |rng| {
        let values = finite_vec(rng, 120);
        assert!(lagged_mutual_information(&values, 1, 8) >= 0.0);
    });
}

#[test]
fn emd_never_panics_and_entropy_is_finite() {
    for_cases("emd_never_panics_and_entropy_is_finite", |rng| {
        let values = finite_vec(rng, 120);
        let (h1, h2) = imf_entropies(&values, &EmdConfig::default());
        assert!(h1.is_finite() && h2.is_finite());
        assert!(h1 >= 0.0 && h2 >= 0.0);
    });
}

#[test]
fn extractor_output_is_finite_for_any_window() {
    for_cases("extractor_output_is_finite_for_any_window", |rng| {
        let rows = rng.random_range(5..60usize);
        let ex = FingerprintExtractor::full(3);
        let window: Vec<LabeledObservation> = (0..rows)
            .map(|_| {
                let x: Vec<f64> = (0..3).map(|_| rng.random_range(-100.0..100.0)).collect();
                LabeledObservation::new(x, rng.random_range(0..3usize), rng.random_range(0..3usize))
            })
            .collect();
        let fp = ex.extract(&window, None);
        assert_eq!(fp.len(), ex.schema().len());
        assert!(fp.iter().all(|v| v.is_finite()));
    });
}

#[test]
fn adwin_handles_arbitrary_bounded_input() {
    for_cases("adwin_handles_arbitrary_bounded_input", |rng| {
        let values = vec_in(rng, 0.0, 1.0, 1, 500);
        let mut adwin = Adwin::new(0.01);
        for &v in &values {
            adwin.add(v);
        }
        assert!(adwin.width() <= values.len() as u64);
        assert!(adwin.mean().is_finite());
        assert!(adwin.variance() >= -1e-9);
    });
}

#[test]
fn kappa_is_bounded() {
    for_cases("kappa_is_bounded", |rng| {
        let pairs = rng.random_range(1..300usize);
        let mut k = KappaEvaluator::new(3);
        for _ in 0..pairs {
            k.record(rng.random_range(0..3usize), rng.random_range(0..3usize));
        }
        let kappa = k.kappa();
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&kappa), "kappa {kappa}");
    });
}

#[test]
fn sliding_window_never_exceeds_capacity() {
    for_cases("sliding_window_never_exceeds_capacity", |rng| {
        let cap = rng.random_range(1..20usize);
        let n = rng.random_range(0..100usize);
        let mut w = SlidingWindow::new(cap);
        for i in 0..n {
            w.push(LabeledObservation::new(vec![i as f64], 0, 0));
            assert!(w.len() <= cap);
        }
        assert_eq!(w.len(), n.min(cap));
    });
}

#[test]
fn template_sessions_replay_bit_identical_to_fresh_builds() {
    use ficsum::core::{FicsumConfig, SessionTemplate, Variant};
    // One validated template must stamp pipelines indistinguishable from a
    // freshly built one under any bounded input stream: the serving layer's
    // determinism contract reduced to its core. Fewer cases than the
    // numeric properties — each case drives two full pipelines 1k steps.
    for case in 0..8u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(0x7E3A_1000 + case);
        let config = FicsumConfig::default()
            .with_window_size(rng.random_range(30..80usize))
            .with_fingerprint_gap(rng.random_range(3..10usize))
            .with_repository_gap(rng.random_range(40..90usize));
        let template = SessionTemplate::new(3, 2, config, Variant::Full)
            .expect("sampled configs are within validated ranges");
        let mut from_template = template.instantiate();
        let mut fresh = ficsum::core::FicsumBuilder::new(3, 2)
            .config(config)
            .build()
            .expect("template accepted this config");
        for step in 0..1_000usize {
            let x: Vec<f64> = (0..3).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = rng.random_range(0..2usize);
            let a = from_template.process(&x, y);
            let b = fresh.process(&x, y);
            assert_eq!(a, b, "case {case} diverged at step {step}");
        }
        assert_eq!(from_template.stats(), fresh.stats(), "case {case} stats diverged");
    }
}

#[test]
fn checkpoint_restore_replays_bit_identical_for_a_thousand_steps() {
    use ficsum::core::{FicsumConfig, SessionTemplate, Variant};
    // Fault-tolerant serving's restore contract: a pipeline checkpointed at
    // an arbitrary point and rehydrated through its template must be
    // indistinguishable from the uninterrupted original — same outcomes,
    // same stats — over a long shared tail. Random configs and random
    // checkpoint positions probe the capture across warm-up, drift, and
    // recurrence phases.
    for case in 0..8u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(0xC4EC_2000 + case);
        let config = FicsumConfig::default()
            .with_window_size(rng.random_range(30..80usize))
            .with_fingerprint_gap(rng.random_range(3..10usize))
            .with_repository_gap(rng.random_range(40..90usize));
        let template = SessionTemplate::new(3, 2, config, Variant::Full)
            .expect("sampled configs are within validated ranges");
        let mut original = template.instantiate();
        let cut = rng.random_range(50..700usize);
        for _ in 0..cut {
            let x: Vec<f64> = (0..3).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = rng.random_range(0..2usize);
            original.process(&x, y);
        }
        let checkpoint = original.checkpoint();
        assert_eq!(checkpoint.steps(), cut as u64);
        let mut restored = template
            .restore(&checkpoint)
            .expect("a checkpoint from this template always restores");
        for step in 0..1_000usize {
            let x: Vec<f64> = (0..3).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = rng.random_range(0..2usize);
            let a = original.process(&x, y);
            let b = restored.process(&x, y);
            assert_eq!(a, b, "case {case} (cut {cut}) diverged at step {step}");
        }
        assert_eq!(original.stats(), restored.stats(), "case {case} stats diverged");
    }
}

#[test]
fn concept_fingerprint_mean_is_bounded_by_inputs() {
    for_cases("concept_fingerprint_mean_is_bounded_by_inputs", |rng| {
        let rows = rng.random_range(1..50usize);
        let mut cf = ConceptFingerprint::new(4);
        for _ in 0..rows {
            let row: Vec<f64> = (0..4).map(|_| rng.random_range(0.0..1.0)).collect();
            cf.incorporate(&row);
        }
        for dim in 0..4 {
            let m = cf.mean(dim);
            assert!((0.0..=1.0).contains(&m));
            assert!(cf.std_dev(dim) <= 0.5 + 1e-9);
        }
    });
}

#[test]
fn incremental_stats_match_batch_through_evictions_and_resets() {
    use ficsum::meta::{FingerprintEngine, MetaFunction};
    use ficsum::stream::FrameWindows;
    // The incremental-statistics tolerance contract (DESIGN.md "Incremental
    // statistics") over long randomized streams: every substituted
    // statistic must track the batch sweep within 1e-9 relative across
    // window fill, steady-state evictions and buffer resets, and the
    // discrete dimensions (lagged MI, turning-point rate) plus the cached
    // IMF entropies must stay bit-exact at stride 1. Both windows are
    // probed; the active window uses the non-repredicting extraction so
    // the prediction and error banks are exercised too.
    for case in 0..6u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(0x14C2_3000 + case);
        let d = rng.random_range(2..5usize);
        let w = rng.random_range(20..60usize);
        let delay = rng.random_range(0..15usize);
        let ex = FingerprintExtractor::full(d);
        let bins = ex.mi_bins();
        let mut fast = FingerprintEngine::new(ex.clone()).with_incremental_stats(true);
        let mut batch = FingerprintEngine::new(ex);
        let mut fw = FrameWindows::new(w, delay, d);
        fw.enable_stats(bins);
        let nf = MetaFunction::SEQUENCE_FUNCTIONS.len();
        let (mut out_fast, mut out_batch) = (Vec::new(), Vec::new());
        let mut compared = 0usize;
        for step in 0..1_000usize {
            let x: Vec<f64> = (0..d).map(|_| rng.random_range(-50.0..50.0)).collect();
            fw.push(&x, rng.random_range(0..3usize), rng.random_range(0..3usize));
            if rng.random_range(0..150usize) == 0 {
                // The drift path's stale-window restart.
                fw.clear_buffer();
            }
            if step % 13 != 0 {
                continue;
            }
            let mut check = |fast: &mut FingerprintEngine,
                             batch: &mut FingerprintEngine,
                             tracked: ficsum::stream::TrackedFrames<'_>,
                             view: ficsum::stream::FrameView<'_>,
                             which: &str| {
                fast.extract_tracked_frames_into(&tracked, None, &mut out_fast);
                batch.extract_frames_into(&view, None, &mut out_batch);
                assert_eq!(out_fast.len(), out_batch.len());
                for (i, (t, b)) in out_fast.iter().zip(&out_batch).enumerate() {
                    assert!(
                        (t - b).abs() <= 1e-9 * (1.0 + b.abs()),
                        "case {case} step {step} {which} dim {i}: batch {b} vs incremental {t}"
                    );
                }
                for s in 0..(d + 4) {
                    for f in [8usize, 9, 10, 11] {
                        assert_eq!(
                            out_fast[s * nf + f].to_bits(),
                            out_batch[s * nf + f].to_bits(),
                            "case {case} step {step} {which} source {s} fn {f}"
                        );
                    }
                }
            };
            if fw.a_len() >= 4 {
                check(&mut fast, &mut batch, fw.a_tracked(), fw.a_view(), "active");
                compared += 1;
            }
            if fw.stale_len() >= 4 {
                check(&mut fast, &mut batch, fw.stale_tracked(), fw.stale_view(), "stale");
            }
        }
        assert!(compared > 50, "case {case} barely extracted ({compared})");
    }
}

#[test]
fn incremental_stats_checkpoint_restore_replays_bit_identical() {
    use ficsum::core::{FicsumConfig, SessionTemplate, Variant};
    // The restore contract must survive the incremental-statistics mode:
    // the checkpoint carries the frame windows' stat banks verbatim and
    // `enable_stats` keeps them untouched on rehydration, so a restored
    // session replays bit-identically to the uninterrupted original. Runs
    // at the default EMD stride (1), where the entropy cache is a pure
    // content-hash memo and an empty cache recomputes the same bits.
    for case in 0..8u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(0xE5D0_4000 + case);
        let config = FicsumConfig::default()
            .with_window_size(rng.random_range(30..80usize))
            .with_fingerprint_gap(rng.random_range(3..10usize))
            .with_repository_gap(rng.random_range(40..90usize));
        let template = SessionTemplate::new(3, 2, config, Variant::Full)
            .expect("sampled configs are within validated ranges")
            .with_incremental_stats(true);
        let mut original = template.instantiate();
        let cut = rng.random_range(50..700usize);
        for _ in 0..cut {
            let x: Vec<f64> = (0..3).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = rng.random_range(0..2usize);
            original.process(&x, y);
        }
        let checkpoint = original.checkpoint();
        let mut restored = template
            .restore(&checkpoint)
            .expect("a checkpoint from this template always restores");
        for step in 0..1_000usize {
            let x: Vec<f64> = (0..3).map(|_| rng.random_range(0.0..1.0)).collect();
            let y = rng.random_range(0..2usize);
            let a = original.process(&x, y);
            let b = restored.process(&x, y);
            assert_eq!(a, b, "case {case} (cut {cut}) diverged at step {step}");
        }
        assert_eq!(original.stats(), restored.stats(), "case {case} stats diverged");
    }
}
