//! Property-based tests over the core data structures and invariants.

use ficsum::core::{cosine, fingerprint_similarity, weighted_cosine, ConceptFingerprint};
use ficsum::drift::{Adwin, DriftDetector};
use ficsum::eval::KappaEvaluator;
use ficsum::meta::{
    autocorrelation, imf_entropies, kurtosis, lagged_mutual_information, mean,
    partial_autocorrelation, skewness, std_dev, turning_point_rate, EmdConfig,
    FingerprintExtractor,
};
use ficsum::stream::{EwStats, LabeledObservation, MinMaxScaler, RunningStats, SlidingWindow};
use proptest::prelude::*;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn running_stats_match_batch(values in finite_vec(200)) {
        let mut s = RunningStats::new();
        for &v in &values {
            s.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var));
        prop_assert_eq!(s.count() as usize, values.len());
    }

    #[test]
    fn running_stats_merge_is_order_independent(a in finite_vec(100), b in finite_vec(100)) {
        let fill = |vals: &[f64]| {
            let mut s = RunningStats::new();
            vals.iter().for_each(|&v| s.push(v));
            s
        };
        let mut ab = fill(&a);
        ab.merge(&fill(&b));
        let mut ba = fill(&b);
        ba.merge(&fill(&a));
        prop_assert!((ab.mean() - ba.mean()).abs() <= 1e-6 * (1.0 + ab.mean().abs()));
        prop_assert!((ab.variance() - ba.variance()).abs() <= 1e-4 * (1.0 + ab.variance()));
    }

    #[test]
    fn minmax_scaler_stays_in_unit_interval(values in finite_vec(100), probe in -1e6f64..1e6) {
        let mut m = MinMaxScaler::new();
        values.iter().for_each(|&v| m.observe(v));
        let s = m.scale(probe);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn ew_stats_mean_is_bounded_by_observed_range(values in finite_vec(100)) {
        let mut s = EwStats::new(0.1);
        values.iter().for_each(|&v| s.push(v));
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean() >= lo - 1e-9 && s.mean() <= hi + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn cosine_is_bounded_and_symmetric(a in finite_vec(32), b in finite_vec(32)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let s = cosine(a, b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        prop_assert!((s - cosine(b, a)).abs() < 1e-12);
    }

    #[test]
    fn weighted_cosine_self_similarity_is_one(a in prop::collection::vec(0.01f64..1e3, 2..32),
                                              w in prop::collection::vec(0.01f64..10.0, 32)) {
        let s = weighted_cosine(&a, &a, &w[..a.len()]);
        prop_assert!((s - 1.0).abs() < 1e-9, "self-sim {s}");
    }

    #[test]
    fn fingerprint_similarity_bounded_for_normalised_inputs(
        a in prop::collection::vec(0.0f64..1.0, 1..32),
        b in prop::collection::vec(0.0f64..1.0, 32),
        w in prop::collection::vec(0.0f64..5.0, 32),
    ) {
        let n = a.len();
        let s = fingerprint_similarity(&a, &b[..n], &w[..n]);
        prop_assert!((0.0..=1.0).contains(&s), "sim {s}");
    }

    #[test]
    fn moment_functions_are_finite(values in finite_vec(150)) {
        for f in [mean, std_dev, skewness, kurtosis, turning_point_rate] {
            prop_assert!(f(&values).is_finite());
        }
        prop_assert!(autocorrelation(&values, 1).is_finite());
        prop_assert!(autocorrelation(&values, 2).is_finite());
        prop_assert!(partial_autocorrelation(&values, 2).is_finite());
    }

    #[test]
    fn autocorrelation_is_bounded(values in finite_vec(150)) {
        for lag in [1usize, 2] {
            let r = autocorrelation(&values, lag);
            prop_assert!((-1.000001..=1.000001).contains(&r), "acf{lag}={r}");
        }
    }

    #[test]
    fn mutual_information_is_nonnegative(values in finite_vec(120)) {
        prop_assert!(lagged_mutual_information(&values, 1, 8) >= 0.0);
    }

    #[test]
    fn emd_never_panics_and_entropy_is_finite(values in finite_vec(120)) {
        let (h1, h2) = imf_entropies(&values, &EmdConfig::default());
        prop_assert!(h1.is_finite() && h2.is_finite());
        prop_assert!(h1 >= 0.0 && h2 >= 0.0);
    }

    #[test]
    fn extractor_output_is_finite_for_any_window(
        rows in prop::collection::vec(
            (prop::collection::vec(-100.0f64..100.0, 3), 0usize..3, 0usize..3),
            5..60,
        )
    ) {
        let ex = FingerprintExtractor::full(3);
        let window: Vec<LabeledObservation> = rows
            .into_iter()
            .map(|(x, y, l)| LabeledObservation::new(x, y, l))
            .collect();
        let fp = ex.extract(&window, None);
        prop_assert_eq!(fp.len(), ex.schema().len());
        prop_assert!(fp.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn adwin_handles_arbitrary_bounded_input(values in prop::collection::vec(0.0f64..1.0, 1..500)) {
        let mut adwin = Adwin::new(0.01);
        for &v in &values {
            adwin.add(v);
        }
        prop_assert!(adwin.width() <= values.len() as u64);
        prop_assert!(adwin.mean().is_finite());
        prop_assert!(adwin.variance() >= -1e-9);
    }

    #[test]
    fn kappa_is_bounded(pairs in prop::collection::vec((0usize..3, 0usize..3), 1..300)) {
        let mut k = KappaEvaluator::new(3);
        for (t, p) in pairs {
            k.record(t, p);
        }
        let kappa = k.kappa();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&kappa), "kappa {kappa}");
    }

    #[test]
    fn sliding_window_never_exceeds_capacity(cap in 1usize..20, n in 0usize..100) {
        let mut w = SlidingWindow::new(cap);
        for i in 0..n {
            w.push(LabeledObservation::new(vec![i as f64], 0, 0));
            prop_assert!(w.len() <= cap);
        }
        prop_assert_eq!(w.len(), n.min(cap));
    }

    #[test]
    fn concept_fingerprint_mean_is_bounded_by_inputs(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 4), 1..50)
    ) {
        let mut cf = ConceptFingerprint::new(4);
        for row in &rows {
            cf.incorporate(row);
        }
        for dim in 0..4 {
            let m = cf.mean(dim);
            prop_assert!((0.0..=1.0).contains(&m));
            prop_assert!(cf.std_dev(dim) <= 0.5 + 1e-9);
        }
    }
}
