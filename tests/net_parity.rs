//! The network layer's headline guarantee: sessions served over TCP are
//! **bit-identical** to standalone pipelines stamped from the same
//! template — the wire adds transport, never drift. Plus the protocol's
//! robustness contracts: remote backpressure surfaces as a typed,
//! retryable rejection (never a hang), malformed and truncated streams
//! are refused without harming other connections, a client disconnect
//! releases only that client, and a server shutdown mid-conversation is
//! an orderly goodbye.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use ficsum::net::wire::{self, kind};
use ficsum::prelude::*;

const SESSIONS: usize = 12;
const CLIENTS: usize = 4;
const SHARDS: usize = 3;
const STEPS: usize = 600;

/// Per-session observation tapes: distinct STAGGER seeds so sessions
/// drift at different points and exercise independent repositories.
fn tapes() -> Vec<Vec<(Vec<f64>, usize)>> {
    (0..SESSIONS)
        .map(|s| {
            let mut stream = ficsum::synth::dataset_by_name("STAGGER", 300 + s as u64).unwrap();
            (0..STEPS)
                .map(|_| {
                    let o = stream.next_observation().expect("synthetic streams are infinite");
                    (o.features.clone(), o.label)
                })
                .collect()
        })
        .collect()
}

fn template() -> SessionTemplate {
    let config = FicsumConfig::default().with_window_size(50).with_fingerprint_gap(5);
    SessionTemplate::new(3, 2, config, Variant::Full).unwrap()
}

fn serve_config() -> ServeConfig {
    ServeConfig::default()
        .with_shards(SHARDS)
        .with_queue_capacity(SESSIONS * STEPS)
        .with_max_sessions_per_shard(SESSIONS)
}

fn bind(server: Arc<StreamServer>) -> NetServer {
    NetServer::bind("127.0.0.1:0", server).expect("bind loopback")
}

#[test]
fn tcp_served_outcomes_are_bit_identical_to_sequential_reference() {
    let tapes = tapes();
    let template = template();
    let core = Arc::new(StreamServer::new(template.clone(), serve_config()));
    let net = bind(core);
    let addr = net.local_addr();

    // N clients, each owning a disjoint set of sessions, submitting
    // concurrently over their own connections so handler threads and
    // shard workers interleave freely.
    let collected: Vec<Vec<(usize, Vec<RemoteOutcome>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let tapes = &tapes;
                scope.spawn(move || {
                    let mut client =
                        NetClient::connect_expecting(addr, 3, 2).expect("handshake");
                    assert_eq!(client.shards(), SHARDS);
                    let mine: Vec<usize> =
                        (0..SESSIONS).filter(|s| s % CLIENTS == c).collect();
                    let mut outcomes: Vec<(usize, Vec<RemoteOutcome>)> =
                        mine.iter().map(|&s| (s, Vec::with_capacity(STEPS))).collect();
                    let mut cursors: Vec<_> = mine.iter().map(|&s| tapes[s].iter()).collect();
                    // Batch one observation per owned session per wave:
                    // cross-session batches fan out across shards.
                    for _ in 0..STEPS {
                        let wave: Vec<Submit> = mine
                            .iter()
                            .zip(cursors.iter_mut())
                            .map(|(&s, tape)| {
                                let (features, label) =
                                    tape.next().expect("tapes hold STEPS entries");
                                Submit::new(SessionId(s as u64), features.clone(), *label)
                            })
                            .collect();
                        let results = client.submit(&wave).expect("queues sized for the run");
                        for (slot, result) in results.into_iter().enumerate() {
                            outcomes[slot].1.push(result.expect("no faults in this run"));
                        }
                    }
                    client.shutdown().expect("orderly goodbye");
                    outcomes
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    // Reference: each session standalone, same template, same tape.
    for per_client in collected {
        for (s, served) in per_client {
            assert_eq!(served.len(), STEPS);
            let mut reference = template.instantiate();
            for (step, (features, label)) in tapes[s].iter().enumerate() {
                let expected = reference.process(features, *label);
                let got = served[step];
                assert_eq!(
                    (got.prediction, got.drift, got.concept_switched, got.active_concept),
                    (
                        expected.prediction,
                        expected.drift,
                        expected.concept_switched,
                        expected.active_concept as u64
                    ),
                    "session {s} diverged at step {step}"
                );
            }
        }
    }

    let metrics = net.metrics();
    assert_eq!(metrics.connections_opened, CLIENTS as u64);
    assert_eq!(metrics.batches_accepted, (CLIENTS * STEPS) as u64);
    assert_eq!(metrics.requests_served, (SESSIONS * STEPS) as u64);
    assert_eq!(metrics.latency.count(), (CLIENTS * STEPS) as u64);

    let report = net.shutdown();
    assert_eq!(report.serve.snapshots.len(), SESSIONS, "every session snapshotted");
    assert_eq!(report.net.connections_closed, CLIENTS as u64);
}

#[test]
fn remote_overload_is_a_typed_rejection_not_a_hang() {
    // A queue smaller than the batch itself: admission can never succeed,
    // so the server must answer `Overloaded` immediately rather than hang
    // the connection waiting for room that will never exist.
    let config = ServeConfig::default().with_shards(1).with_queue_capacity(2);
    let core = Arc::new(StreamServer::new(template(), config));
    let net = bind(core);
    let mut client = NetClient::connect(net.local_addr()).expect("handshake");

    let batch: Vec<Submit> = (0..8)
        .map(|i| Submit::new(SessionId(i as u64), vec![0.1, 0.2, 0.3], i % 2))
        .collect();
    match client.submit(&batch) {
        Err(NetError::Rejected(ServeError::Overloaded { shard: 0 })) => {}
        other => panic!("expected remote Overloaded, got {other:?}"),
    }
    // The deadline path refuses with DeadlineExceeded once the budget is
    // spent — also without hanging.
    match client.submit_with_deadline(&batch, Duration::from_millis(20)) {
        Err(NetError::Rejected(ServeError::DeadlineExceeded)) => {}
        other => panic!("expected remote DeadlineExceeded, got {other:?}"),
    }
    // Retry exhausts its attempts on the same refusal and reports it.
    let policy = RetryPolicy::default()
        .with_max_attempts(3)
        .with_initial_backoff(Duration::from_millis(1));
    match client.submit_with_retry(&batch, policy) {
        Err(NetError::Rejected(ServeError::Overloaded { .. })) => {}
        other => panic!("expected retry-exhausted Overloaded, got {other:?}"),
    }
    // The connection survived every refusal: a small batch still works.
    let ok = client
        .submit(&[Submit::new(SessionId(0), vec![0.1, 0.2, 0.3], 0)])
        .expect("connection usable after rejections");
    assert_eq!(ok.len(), 1);
    assert!(net.metrics().batches_rejected >= 4);
    net.shutdown();
}

#[test]
fn schema_and_dimension_mismatches_fail_typed() {
    let core = Arc::new(StreamServer::new(template(), serve_config()));
    let net = bind(core);

    // Wrong declared schema: refused at handshake.
    match NetClient::connect_expecting(net.local_addr(), 7, 2) {
        Err(NetError::Protocol(ProtocolError::SchemaMismatch { expected: 3, got: 7 })) => {}
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }

    // Discovery still works, and client-side validation mirrors the
    // server's eager checks without a round trip.
    let mut client = NetClient::connect(net.local_addr()).expect("handshake");
    assert_eq!((client.n_features(), client.n_classes()), (3, 2));
    match client.submit(&[Submit::new(SessionId(0), vec![0.5], 0)]) {
        Err(NetError::Rejected(ServeError::DimensionMismatch { expected: 3, got: 1 })) => {}
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    match client.submit(&[]) {
        Err(NetError::Rejected(ServeError::EmptyBatch)) => {}
        other => panic!("expected EmptyBatch, got {other:?}"),
    }
    net.shutdown();
}

#[test]
fn malformed_frames_are_refused_without_harming_other_connections() {
    let core = Arc::new(StreamServer::new(template(), serve_config()));
    let net = bind(core);
    let addr = net.local_addr();
    let mut good = NetClient::connect(addr).expect("handshake");

    // A raw socket speaking garbage: the server reports the violation
    // (an ERROR frame) and closes that connection only.
    let mut raw = TcpStream::connect(addr).expect("connect");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("write garbage");
    raw.flush().unwrap();
    let mut buf = Vec::new();
    let _ = raw.read_to_end(&mut buf); // server closes after its report
    drop(raw);

    // A hello frame announcing more payload than ever arrives (the peer
    // hangs up mid-frame): truncation, counted as a protocol error.
    let mut trunc = TcpStream::connect(addr).expect("connect");
    let mut hello = Vec::new();
    hello.extend_from_slice(&11u32.to_le_bytes()); // kind + 10 payload bytes
    hello.push(kind::CLIENT_HELLO);
    hello.extend_from_slice(b"FCSM");
    hello.extend_from_slice(&wire::PROTOCOL_VERSION.to_le_bytes());
    trunc.write_all(&hello).expect("write truncated stream"); // 6 of 10, then EOF
    drop(trunc);

    // A version from the future: typed refusal at handshake.
    let mut future = TcpStream::connect(addr).expect("connect");
    let mut payload = Vec::new();
    payload.extend_from_slice(b"FCSM");
    payload.extend_from_slice(&9999u16.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    let mut frame = ((payload.len() + 1) as u32).to_le_bytes().to_vec();
    frame.push(kind::CLIENT_HELLO);
    frame.extend_from_slice(&payload);
    future.write_all(&frame).expect("write future hello");
    let mut reply = Vec::new();
    let _ = future.read_to_end(&mut reply);
    assert!(!reply.is_empty(), "server reports the version mismatch before closing");
    assert_eq!(reply[4], kind::ERROR);
    drop(future);

    // The healthy connection is entirely unaffected.
    let results = good
        .submit(&[Submit::new(SessionId(3), vec![0.2, 0.4, 0.6], 1)])
        .expect("good client unaffected by bad peers");
    assert_eq!(results.len(), 1);
    // The garbage and truncated connections were counted; the future-
    // version one failed at handshake (also a protocol error).
    assert!(net.metrics().protocol_errors >= 2);
    net.shutdown();
}

#[test]
fn client_disconnect_releases_only_that_client() {
    let core = Arc::new(StreamServer::new(template(), serve_config()));
    let net = bind(core);
    let addr = net.local_addr();

    let mut stayer = NetClient::connect(addr).expect("handshake");
    {
        let mut leaver = NetClient::connect(addr).expect("handshake");
        leaver
            .submit(&[Submit::new(SessionId(1), vec![0.1, 0.2, 0.3], 0)])
            .expect("submit before vanishing");
        // Dropped without a goodbye: the server sees EOF and cleans up.
    }
    // Wait for the server to observe the close.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while net.metrics().connections_closed < 1 {
        assert!(std::time::Instant::now() < deadline, "server never noticed the disconnect");
        std::thread::sleep(Duration::from_millis(5));
    }
    let results = stayer
        .submit(&[Submit::new(SessionId(2), vec![0.1, 0.2, 0.3], 1)])
        .expect("surviving client keeps its connection");
    assert_eq!(results.len(), 1);
    stayer.shutdown().expect("orderly goodbye");
    net.shutdown();
}

#[test]
fn server_shutdown_mid_conversation_is_an_orderly_goodbye() {
    let core = Arc::new(StreamServer::new(template(), serve_config()));
    let net = bind(core.clone());
    let addr = net.local_addr();

    let mut client = NetClient::connect(addr).expect("handshake");
    client
        .submit(&[Submit::new(SessionId(0), vec![0.3, 0.6, 0.9], 1)])
        .expect("first batch served");

    // Front-end and a direct core caller race shutdown — made safe by
    // StreamServer's idempotent close. The client observes ServerClosed
    // (an unsolicited goodbye), not a reset or a hang.
    let racer = std::thread::spawn(move || core.shutdown_in_place());
    let report = net.shutdown();
    let direct = racer.join().expect("direct shutdown");
    // Exactly-once across the racing reports: one session total.
    assert_eq!(report.serve.snapshots.len() + direct.snapshots.len(), 1);

    match client.submit(&[Submit::new(SessionId(0), vec![0.3, 0.6, 0.9], 1)]) {
        // The server's unsolicited goodbye, read back as ServerClosed —
        // or, if the kernel already tore the socket down around it, the
        // close surfaces as an I/O error / EOF. Never a hang, never junk.
        Err(NetError::ServerClosed) | Err(NetError::Rejected(ServeError::ShutDown)) => {}
        Err(NetError::Io(_)) | Err(NetError::Protocol(ProtocolError::Truncated)) => {}
        other => panic!("expected orderly close, got {other:?}"),
    }
}

#[test]
fn snapshot_summaries_drain_over_the_wire() {
    // One-session shards with a one-session cap: touching a second
    // session on the same shard evicts the first, leaving a snapshot.
    let config =
        ServeConfig::default().with_shards(1).with_queue_capacity(64).with_max_sessions_per_shard(1);
    let core = Arc::new(StreamServer::new(template(), config));
    let net = bind(core);
    let mut client = NetClient::connect(net.local_addr()).expect("handshake");

    for id in 0..3u64 {
        client
            .submit(&[Submit::new(SessionId(id), vec![0.1, 0.2, 0.3], 0)])
            .expect("serve one observation per session");
    }
    let summaries = client.snapshot_summaries().expect("drain over the wire");
    assert_eq!(summaries.len(), 2, "two sessions were evicted by the cap");
    for summary in &summaries {
        assert_eq!(summary.reason, EvictReason::Capacity);
        assert_eq!(summary.steps, 1);
        assert!(summary.has_checkpoint);
    }
    // Exactly-once: a second drain is empty.
    assert!(client.snapshot_summaries().expect("second drain").is_empty());
    net.shutdown();
}
